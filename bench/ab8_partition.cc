// Ablation A8: partitions, gray failure, and the detection-timeout trade.
//
// The failure detector turns heartbeat silence into declarations of death,
// and the confirm timeout is the knob: confirm too fast and a transient
// partition gets a healthy machine declared dead (a needless failover);
// confirm too slow and a real gray failure stalls writers for the whole
// window. This bench sweeps confirm_after against
//
//  * a transient one-way partition that heals before (or after!) the
//    confirm deadline — reporting false suspicions, needless declarations,
//    and writer completion time,
//  * a permanent gray failure (the host stays up but unreachable) —
//    reporting detection latency, time-to-recover (partition onset to
//    backup promoted), and the fencing/dedup counters that prove the
//    failover was exactly-once,
//  * per-link packet loss with no partition at all — reporting the
//    retransmit/unreachable pressure and the false-suspicion rate pure
//    loss induces.
//
// Writers are at-least-once clients (stable request id per logical write,
// epoch re-resolved per attempt); every scenario verifies no acked write
// was lost or double-applied.
//
// --smoke runs the gray-failure scenario twice at the default timeout and
// exits nonzero if the same-seed runs diverge or any write is lost or
// duplicated, so CI catches nondeterminism in the partition path.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/durability/recovery_coordinator.h"
#include "quicksand/durability/replication.h"
#include "quicksand/health/failure_detector.h"
#include "quicksand/proclet/fenced_kv_proclet.h"
#include "quicksand/trace/bench_trace.h"
#include "quicksand/trace/flight_recorder.h"

namespace quicksand {
namespace {

enum class Scenario { kTransient, kGray, kLoss };

constexpr int kMachines = 4;
constexpr int kWrites = 16;
constexpr Duration kOutage = Duration::Millis(6);  // transient partition
constexpr Duration kGrayWindow = Duration::Millis(40);

struct RunResult {
  Duration detect = Duration::Zero();   // partition onset -> confirmation
  Duration recover = Duration::Zero();  // partition onset -> backup promoted
  Duration writer_time = Duration::Zero();
  int64_t suspicions = 0;
  int64_t false_suspicions = 0;
  int64_t confirmations = 0;
  int64_t declared_dead = 0;
  int64_t promotions = 0;
  int64_t fenced_rpcs = 0;
  int64_t duplicates = 0;  // retries answered from the dedup set
  int64_t retransmits = 0;
  int64_t unreachable = 0;
  int64_t dropped = 0;
  int64_t acked = 0;
  int64_t failed = 0;
  int64_t wrong = 0;  // lost or double-applied acked writes
  std::string digest;
};

Task<FencedKvProclet::PutResult> RawPut(Ref<FencedKvProclet> kv, Ctx ctx,
                                        uint64_t epoch, uint64_t rid,
                                        uint64_t key, int64_t value) {
  auto call = kv.Call(
      ctx, [epoch, rid, key, value](FencedKvProclet& p)
      -> Task<FencedKvProclet::PutResult> {
        co_return p.Put(epoch, rid, key, value);
      });
  co_return co_await std::move(call);
}

Task<bool> AckedPut(Ref<FencedKvProclet> kv, Runtime& rt, uint64_t rid,
                    uint64_t key, int64_t value) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const uint64_t epoch = rt.EpochOf(kv.id());
    if (epoch == 0) {
      co_await rt.sim().Sleep(Duration::Micros(500));
      continue;
    }
    bool lost = false;  // co_await is not allowed inside a catch handler
    try {
      FencedKvProclet::PutResult result =
          co_await RawPut(kv, rt.CtxOn(0), epoch, rid, key, value);
      if (result.applied || result.duplicate) {
        co_return true;
      }
    } catch (const ProcletUnreachableError&) {
    } catch (const ProcletLostError&) {
      lost = true;
    }
    if (lost) {
      (void)co_await rt.AwaitRestore(kv.id(), Duration::Millis(50));
    }
    co_await rt.sim().Sleep(Duration::Micros(500));
  }
  co_return false;
}

Task<> Writer(Ref<FencedKvProclet> kv, Runtime& rt, int64_t& acked,
              int64_t& failed, SimTime& done) {
  for (int i = 0; i < kWrites; ++i) {
    const uint64_t key = static_cast<uint64_t>(i);
    if (co_await AckedPut(kv, rt, 100 + key, key,
                          static_cast<int64_t>(key) * 5 + 1)) {
      ++acked;
    } else {
      ++failed;
    }
    co_await rt.sim().Sleep(Duration::Millis(1));
  }
  done = rt.sim().Now();
}

RunResult RunOne(Scenario scenario, Duration confirm_after, double loss,
                 BenchTrace* trace, const std::string& label,
                 const char* postmortem_path = nullptr) {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < kMachines; ++i) {
    MachineSpec spec;
    spec.cores = 4;
    spec.memory_bytes = 2 * kGiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  // This bench traces unconditionally: the trace digest is part of the run
  // digest (the determinism gate covers the tracer itself), and the flight
  // recorder needs a ring to freeze when the primary is declared dead. When
  // --trace is given the events also land in the exported JSON.
  Tracer local_tracer(sim, cluster.size());
  Tracer* tracer = AttachBenchTracer(trace, rt, label);
  if (tracer == nullptr) {
    tracer = &local_tracer;
    rt.AttachTracer(tracer);
  }
  FlightRecorder recorder(*tracer, /*last_n=*/1000);
  rt.AttachFlightRecorder(&recorder);
  FaultInjector faults(sim, cluster);
  rt.AttachFaultInjector(faults);

  FailureDetectorOptions dopt;
  dopt.controller = 0;
  dopt.heartbeat_period = Duration::Micros(500);
  dopt.suspect_after = Duration::Millis(2);
  dopt.confirm_after = confirm_after;
  dopt.check_period = Duration::Micros(250);
  FailureDetector detector(sim, cluster, dopt);

  ReplicationManager replication(rt);
  RecoveryCoordinator recovery(rt);
  recovery.AttachReplication(&replication);

  SimTime confirmed_at = SimTime::Zero();
  detector.OnConfirm([&confirmed_at, &sim](MachineId) {
    if (confirmed_at == SimTime::Zero()) {
      confirmed_at = sim.Now();
    }
  });
  rt.AttachFailureDetector(detector);
  replication.ArmDetector(detector);
  recovery.ArmDetector(detector);
  detector.Start();

  Ctx ctx = rt.CtxOn(0);
  PlacementRequest req;
  req.heap_bytes = 1_MiB;
  req.pinned = 1;
  Ref<FencedKvProclet> kv = *sim.BlockOn(rt.Create<FencedKvProclet>(ctx, req));
  (void)sim.BlockOn(replication.ReplicateAs<FencedKvProclet>(ctx, kv.id()));

  RunResult r;
  int64_t acked = 0, failed = 0;
  SimTime writer_done = SimTime::Zero();
  const SimTime writer_start = sim.Now();
  sim.Spawn(Writer(kv, rt, acked, failed, writer_done), "writer");

  const SimTime fault_at = sim.Now() + Duration::Millis(5);
  switch (scenario) {
    case Scenario::kTransient:
      faults.SchedulePartitionOneWay(fault_at, 1, 0, kOutage);
      faults.SchedulePartitionOneWay(fault_at, 1, 2, kOutage);
      faults.SchedulePartitionOneWay(fault_at, 1, 3, kOutage);
      break;
    case Scenario::kGray:
      faults.SchedulePartitionOneWay(fault_at, 1, 0, kGrayWindow);
      faults.SchedulePartitionOneWay(fault_at, 1, 2, kGrayWindow);
      faults.SchedulePartitionOneWay(fault_at, 1, 3, kGrayWindow);
      break;
    case Scenario::kLoss:
      for (MachineId a = 0; a < kMachines; ++a) {
        for (MachineId b = 0; b < kMachines; ++b) {
          if (a != b) {
            faults.ScheduleLinkLoss(fault_at, a, b, loss,
                                    Duration::Millis(120));
          }
        }
      }
      break;
  }

  sim.RunFor(Duration::Millis(200));
  detector.Stop();

  if (confirmed_at != SimTime::Zero()) {
    r.detect = confirmed_at - fault_at;
  }
  if (!recovery.reports().empty()) {
    const RecoveryReport& report = recovery.reports().front();
    r.recover = (report.started + report.elapsed) - fault_at;
  }
  r.writer_time =
      (writer_done == SimTime::Zero() ? sim.Now() : writer_done) - writer_start;
  r.suspicions = detector.suspicions();
  r.false_suspicions = detector.false_suspicions();
  r.confirmations = detector.confirmations();
  r.declared_dead = rt.stats().declared_dead;
  r.promotions = replication.promotions();
  r.fenced_rpcs = rt.stats().fenced_rpcs;
  r.retransmits = rt.stats().response_retransmits;
  r.unreachable = rt.stats().unreachable_invocations;
  r.dropped = cluster.fabric().dropped_transfers();
  r.acked = acked;
  r.failed = failed;

  FencedKvProclet* p = rt.UnsafeGet<FencedKvProclet>(kv.id());
  if (p != nullptr) {
    r.duplicates = p->guard().duplicates();
  }
  for (int i = 0; i < kWrites; ++i) {
    const uint64_t key = static_cast<uint64_t>(i);
    if (p == nullptr || !p->Get(key).ok() ||
        *p->Get(key) != static_cast<int64_t>(key) * 5 + 1 ||
        p->ApplyCount(key) != 1) {
      ++r.wrong;
    }
  }

  std::ostringstream digest;
  digest << r.detect.nanos() << '|' << r.recover.nanos() << '|'
         << r.writer_time.nanos() << '|' << r.suspicions << '|'
         << r.false_suspicions << '|' << r.confirmations << '|'
         << r.declared_dead << '|' << r.promotions << '|' << r.fenced_rpcs
         << '|' << r.duplicates << '|' << r.retransmits << '|'
         << r.unreachable << '|' << r.dropped << '|' << r.acked << '|'
         << r.failed << '|' << r.wrong << '|'
         << detector.heartbeats_sent() << '|'
         << detector.heartbeats_delivered() << '|'
         << detector.posthumous_heartbeats() << '|' << rt.EpochOf(kv.id())
         << '|' << sim.Now().nanos() << '|' << std::hex << tracer->Digest();
  r.digest = digest.str();

  if (postmortem_path != nullptr) {
    if (const Postmortem* postmortem = recorder.ForMachine(1)) {
      std::filesystem::create_directories(
          std::filesystem::path(postmortem_path).parent_path());
      std::ofstream out(postmortem_path);
      out << FlightRecorder::Dump(*postmortem);
      std::printf("ab8: wrote m1 postmortem (%zu events, reason '%s') to %s\n",
                  postmortem->events.size(), postmortem->reason.c_str(),
                  postmortem_path);
    }
  }
  return r;
}

int Smoke(BenchTrace* trace) {
  const RunResult first =
      RunOne(Scenario::kGray, Duration::Millis(8), 0.0, trace, "smoke_run1",
             "results/ab8_postmortem_m1.txt");
  const RunResult second =
      RunOne(Scenario::kGray, Duration::Millis(8), 0.0, trace, "smoke_run2");
  std::printf("ab8 smoke: detect %s, recover %s, %lld/%d acked, %lld fenced, "
              "%lld deduped, %lld wrong\n",
              first.detect.ToString().c_str(), first.recover.ToString().c_str(),
              static_cast<long long>(first.acked), kWrites,
              static_cast<long long>(first.fenced_rpcs),
              static_cast<long long>(first.duplicates),
              static_cast<long long>(first.wrong));
  if (first.digest != second.digest) {
    std::printf("ab8 smoke: FAIL — same-seed runs diverged\n  first:  %s\n"
                "  second: %s\n",
                first.digest.c_str(), second.digest.c_str());
    return 1;
  }
  if (first.acked != kWrites || first.failed != 0 || first.wrong != 0 ||
      first.promotions != 1) {
    std::printf("ab8 smoke: FAIL — lost or duplicated writes (acked %lld, "
                "failed %lld, wrong %lld, promotions %lld)\n",
                static_cast<long long>(first.acked),
                static_cast<long long>(first.failed),
                static_cast<long long>(first.wrong),
                static_cast<long long>(first.promotions));
    return 1;
  }
  std::printf("ab8 smoke: PASS (deterministic, exactly-once across the "
              "failover)\n");
  return 0;
}

struct JsonRow {
  std::string scenario;
  double knob;  // confirm ms for partition scenarios, loss fraction for kLoss
  RunResult r;
};

void WriteJson(const std::vector<JsonRow>& rows) {
  std::filesystem::create_directories("results");
  std::ofstream out("results/BENCH_ab8.json");
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& row = rows[i];
    const RunResult& r = row.r;
    out << "  {\"scenario\": \"" << row.scenario << "\", \"knob\": " << row.knob
        << ", \"detect_us\": " << r.detect.nanos() / 1000
        << ", \"recover_us\": " << r.recover.nanos() / 1000
        << ", \"writer_us\": " << r.writer_time.nanos() / 1000
        << ", \"suspicions\": " << r.suspicions
        << ", \"false_suspicions\": " << r.false_suspicions
        << ", \"declared_dead\": " << r.declared_dead
        << ", \"promotions\": " << r.promotions
        << ", \"fenced_rpcs\": " << r.fenced_rpcs
        << ", \"duplicates\": " << r.duplicates
        << ", \"retransmits\": " << r.retransmits
        << ", \"unreachable\": " << r.unreachable
        << ", \"acked\": " << r.acked << ", \"failed\": " << r.failed
        << ", \"wrong\": " << r.wrong << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  std::printf("\nab8: wrote %zu rows to results/BENCH_ab8.json\n", rows.size());
}

void Main(BenchTrace* trace) {
  std::printf("=== A8: detection timeout vs false suspicion and recovery ===\n");
  std::printf("(%d machines, heartbeat 500us, suspect 2ms; a fenced kv "
              "proclet on m1 with a durable backup; %d at-least-once writes "
              "from m0)\n\n",
              kMachines, kWrites);

  const std::vector<Duration> confirms = {
      Duration::Millis(4), Duration::Millis(8), Duration::Millis(16),
      Duration::Millis(32)};
  std::vector<JsonRow> rows;

  std::printf("--- transient one-way partition of m1, %s outage ---\n",
              kOutage.ToString().c_str());
  std::printf("%8s | %8s %9s | %8s %8s | %10s | %5s\n", "confirm", "suspect",
              "declared", "promote", "fenced", "writer", "wrong");
  for (const Duration confirm : confirms) {
    const RunResult r =
        RunOne(Scenario::kTransient, confirm, 0.0, trace,
               "transient_confirm_" + confirm.ToString());
    rows.push_back({"transient", static_cast<double>(confirm.nanos()) / 1e6, r});
    std::printf("%8s | %5lld/%-2lld %9lld | %8lld %8lld | %10s | %5lld\n",
                confirm.ToString().c_str(),
                static_cast<long long>(r.false_suspicions),
                static_cast<long long>(r.suspicions),
                static_cast<long long>(r.declared_dead),
                static_cast<long long>(r.promotions),
                static_cast<long long>(r.fenced_rpcs),
                r.writer_time.ToString().c_str(),
                static_cast<long long>(r.wrong));
  }
  std::printf("(a confirm timeout shorter than the outage declares a healthy "
              "machine dead and fails over for nothing; a longer one rides "
              "it out with a false suspicion)\n\n");

  std::printf("--- permanent gray failure of m1 (%s window) ---\n",
              kGrayWindow.ToString().c_str());
  std::printf("%8s | %9s %9s | %8s %8s | %10s | %5s\n", "confirm", "detect",
              "recover", "fenced", "dedup", "writer", "wrong");
  for (const Duration confirm : confirms) {
    const RunResult r = RunOne(Scenario::kGray, confirm, 0.0, trace,
                               "gray_confirm_" + confirm.ToString());
    rows.push_back({"gray", static_cast<double>(confirm.nanos()) / 1e6, r});
    std::printf("%8s | %9s %9s | %8lld %8lld | %10s | %5lld\n",
                confirm.ToString().c_str(), r.detect.ToString().c_str(),
                r.recover.ToString().c_str(),
                static_cast<long long>(r.fenced_rpcs),
                static_cast<long long>(r.duplicates),
                r.writer_time.ToString().c_str(),
                static_cast<long long>(r.wrong));
  }
  std::printf("(time-to-recover tracks the confirm timeout almost 1:1 — the "
              "promotion itself is a control message)\n\n");

  std::printf("--- per-link packet loss, no partition (confirm 8ms) ---\n");
  std::printf("%6s | %8s %9s | %10s %11s | %10s | %5s\n", "loss", "suspect",
              "declared", "retransmit", "unreachable", "writer", "wrong");
  for (const double loss : {0.05, 0.15, 0.30}) {
    const RunResult r =
        RunOne(Scenario::kLoss, Duration::Millis(8), loss, trace,
               "loss_" + std::to_string(static_cast<int>(loss * 100)) + "pct");
    rows.push_back({"loss", loss, r});
    std::printf("%5.0f%% | %5lld/%-2lld %9lld | %10lld %11lld | %10s | %5lld\n",
                loss * 100, static_cast<long long>(r.false_suspicions),
                static_cast<long long>(r.suspicions),
                static_cast<long long>(r.declared_dead),
                static_cast<long long>(r.retransmits),
                static_cast<long long>(r.unreachable),
                r.writer_time.ToString().c_str(),
                static_cast<long long>(r.wrong));
  }
  std::printf("(loss inflates retransmits and can falsely suspect — but the "
              "request-id dedup keeps every acked write exactly-once "
              "regardless)\n");
  WriteJson(rows);
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  quicksand::BenchTrace trace = quicksand::BenchTrace::FromArgs(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    return quicksand::Smoke(&trace);
  }
  quicksand::Main(&trace);
  return 0;
}
