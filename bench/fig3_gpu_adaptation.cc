// Figure 3 reproduction: "Quicksand dynamically adapts to changing GPU
// resources by rapidly scaling the number of compute proclets, reaching new
// equilibriums in 10-15 ms."
//
// The available GPU count toggles between 4 and 8 every 200 ms. The stage
// scaler watches GPU starvation and queue backlog and splits/merges
// preprocessing compute proclets to match the consumption rate. Calibration:
// one producer proclet's throughput ~= one emulated GPU's consumption, so
// the producer count should track the GPU count.

#include <algorithm>
#include <cstdio>

#include "quicksand/adapt/stage_scaler.h"
#include "quicksand/app/preprocess_stage.h"
#include "quicksand/app/trainer.h"
#include "quicksand/common/bytes.h"
#include "quicksand/trace/bench_trace.h"

namespace quicksand {
namespace {

BenchTrace* g_trace = nullptr;

constexpr Duration kToggleEvery = Duration::Millis(200);
constexpr int kToggles = 8;
constexpr int kGpuLow = 4;
constexpr int kGpuHigh = 8;

void Main() {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < 2; ++i) {
    MachineSpec spec;
    spec.cores = 8;
    spec.memory_bytes = 8 * kGiB;
    spec.cpu_quantum = Duration::Micros(50);
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  (void)AttachBenchTracer(g_trace, rt, "gpu_adaptation");
  const Ctx ctx = rt.CtxOn(0);

  ShardedQueue<Tensor>::Options queue_options;
  queue_options.max_segment_bytes = 1 * kMiB;
  auto queue = *sim.BlockOn(ShardedQueue<Tensor>::Create(ctx, queue_options));

  // Producer throughput: ~1 image/ms (1ms of CPU per image, 1 worker).
  PreprocessStageConfig stage_cfg;
  stage_cfg.images.mean_encoded_bytes = 10000;
  stage_cfg.cost.base = Duration::Micros(200);
  stage_cfg.cost.ns_per_byte = 80.0;
  stage_cfg.cost.tensor_bytes = 16 * 1024;
  stage_cfg.workers_per_proclet = 1;
  PreprocessStage stage(rt, queue, stage_cfg);

  // GPU consumption: 1 tensor/ms per GPU (small batches so idleness tracks
  // starvation tightly).
  GpuTrainerConfig gpu_cfg;
  gpu_cfg.initial_gpus = kGpuLow;
  gpu_cfg.max_gpus = kGpuHigh;
  gpu_cfg.batch_size = 2;
  gpu_cfg.batch_time = Duration::Millis(2);
  gpu_cfg.idle_poll = Duration::Micros(100);
  GpuTrainer trainer(rt, queue, gpu_cfg);
  trainer.Start();

  for (int i = 0; i < kGpuLow; ++i) {
    QS_CHECK(sim.BlockOn(stage.AddProducer(ctx)).ok());
  }

  StageScalerConfig scaler_cfg;
  scaler_cfg.period = Duration::Millis(2);
  scaler_cfg.min_producers = 1;
  scaler_cfg.max_producers = 2 * kGpuHigh;
  scaler_cfg.starvation_fraction = 0.02;
  StageScaler scaler(rt, stage, queue, trainer, scaler_cfg);
  scaler.Start();

  // GPU toggler + gpu-count series.
  TimeSeries gpu_series("gpus");
  sim.Spawn(
      [](Simulator* s, GpuTrainer* t, TimeSeries* series) -> Task<> {
        for (int i = 0; i < kToggles; ++i) {
          co_await s->Sleep(kToggleEvery);
          const int next = (t->gpu_count() == kGpuLow) ? kGpuHigh : kGpuLow;
          t->SetGpuCount(next);
          series->Record(s->Now(), next);
        }
      }(&sim, &trainer, &gpu_series),
      "gpu_toggler");

  sim.RunUntil(SimTime::Zero() + kToggleEvery * (kToggles + 1));

  // --- Adaptation latency per toggle: time until the producer count first
  // reaches the steady value it holds at the end of the window.
  const auto& producers = scaler.producer_series().points();
  std::printf("=== Figure 3: adapting to varying GPU resources ===\n");
  std::printf("GPUs toggle %d<->%d every %lldms; scaler period %lldms\n\n", kGpuLow,
              kGpuHigh, static_cast<long long>(kToggleEvery.millis()),
              static_cast<long long>(scaler_cfg.period.millis()));

  std::printf("%10s %6s %22s %18s\n", "toggle[ms]", "gpus", "steady producers",
              "adaptation[ms]");
  RunningStat adaptation_ms;
  for (const auto& toggle : gpu_series.points()) {
    const SimTime window_end = toggle.time + kToggleEvery;
    // Steady value: the last sample inside the window.
    double steady = -1;
    for (const auto& p : producers) {
      if (p.time >= toggle.time && p.time < window_end) {
        steady = p.value;
      }
    }
    if (steady < 0) {
      continue;
    }
    // First time the count reaches (within 1 of) steady after the toggle.
    double reached_ms = -1;
    for (const auto& p : producers) {
      if (p.time >= toggle.time && p.time < window_end &&
          std::abs(p.value - steady) <= 1.0) {
        reached_ms = (p.time - toggle.time).seconds() * 1e3;
        break;
      }
    }
    if (reached_ms >= 0) {
      adaptation_ms.Add(reached_ms);
      std::printf("%10.0f %6.0f %22.0f %18.1f\n", toggle.time.seconds() * 1e3,
                  toggle.value, steady, reached_ms);
    }
  }
  std::printf("\nadaptation latency: mean %.1fms, min %.1fms, max %.1fms "
              "(paper: 10-15ms)\n",
              adaptation_ms.mean(), adaptation_ms.min(), adaptation_ms.max());
  std::printf("scale-ups: %lld, scale-downs: %lld, images produced: %lld, "
              "tensors trained: %lld\n",
              static_cast<long long>(scaler.scale_ups()),
              static_cast<long long>(scaler.scale_downs()),
              static_cast<long long>(stage.images_produced()),
              static_cast<long long>(trainer.tensors_consumed()));

  std::printf("\ntimeline (10ms samples): t[ms] gpus producers backlog-ish\n");
  int current_gpu = kGpuLow;
  size_t gi = 0;
  for (size_t i = 0; i < producers.size(); i += 5) {
    const auto& p = producers[i];
    while (gi < gpu_series.points().size() &&
           gpu_series.points()[gi].time <= p.time) {
      current_gpu = static_cast<int>(gpu_series.points()[gi].value);
      ++gi;
    }
    std::printf("%8.0f %5d %6.0f\n", p.time.seconds() * 1e3, current_gpu, p.value);
  }
}

}  // namespace
}  // namespace quicksand

int main(int argc, char** argv) {
  quicksand::BenchTrace trace = quicksand::BenchTrace::FromArgs(argc, argv);
  quicksand::g_trace = &trace;
  quicksand::Main();
  return 0;
}
