#include "quicksand/runtime/runtime.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"
#include "quicksand/proclet/compute_proclet.h"

namespace quicksand {
namespace {

// A minimal proclet for exercising the runtime machinery.
class CounterProclet : public ProcletBase {
 public:
  static constexpr ProcletKind kKind = ProcletKind::kMemory;

  explicit CounterProclet(const ProcletInit& init) : ProcletBase(init) {}

  Task<int64_t> Add(int64_t x) {
    value_ += x;
    co_return value_;
  }

  Task<int64_t> SlowAdd(Simulator& sim, int64_t x, Duration delay) {
    co_await sim.Sleep(delay);
    value_ += x;
    co_return value_;
  }

  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

struct RuntimeFixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit RuntimeFixture(int machines = 2, int64_t mem = 4_GiB) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 4;
      spec.memory_bytes = mem;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Task<Ref<CounterProclet>> MakeCounter(Ctx ctx, int64_t heap = 1_MiB,
                                        std::optional<MachineId> pin = {}) {
    PlacementRequest req;
    req.heap_bytes = heap;
    req.pinned = pin;
    Result<Ref<CounterProclet>> ref = co_await rt->Create<CounterProclet>(ctx, req);
    co_return *ref;
  }
};

TEST(RuntimeTest, CreateChargesHostMemory) {
  RuntimeFixture f;
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> ref =
      f.sim.BlockOn(f.MakeCounter(ctx, 100_MiB, MachineId{1}));
  EXPECT_TRUE(static_cast<bool>(ref));
  EXPECT_EQ(ref.Location(), 1u);
  EXPECT_EQ(f.cluster.machine(1).memory().used(), 100_MiB);
  EXPECT_EQ(f.cluster.machine(0).memory().used(), 0);
  EXPECT_EQ(f.rt->stats().creations, 1);
}

TEST(RuntimeTest, BestFitPlacesMemoryProcletOnEmptiestMachine) {
  RuntimeFixture f(3);
  // Pre-load machine 0 and 2.
  EXPECT_TRUE(f.cluster.machine(0).memory().TryCharge(2_GiB));
  EXPECT_TRUE(f.cluster.machine(2).memory().TryCharge(1_GiB));
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx, 1_MiB));
  EXPECT_EQ(ref.Location(), 1u);
}

TEST(RuntimeTest, CreateFailsWhenNothingFits) {
  RuntimeFixture f(2, 1_GiB);
  const Ctx ctx = f.rt->CtxOn(0);
  PlacementRequest req;
  req.heap_bytes = 2_GiB;
  auto result = f.sim.BlockOn(f.rt->Create<CounterProclet>(ctx, req));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

Task<int64_t> CallAdd(Ref<CounterProclet> ref, Ctx ctx, int64_t x) {
  co_return co_await ref.Call(
      ctx, [x](CounterProclet& p) -> Task<int64_t> { return p.Add(x); });
}

TEST(RuntimeTest, LocalInvocationIsFree) {
  RuntimeFixture f;
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx, 1_MiB, MachineId{0}));
  const SimTime before = f.sim.Now();
  const int64_t v = f.sim.BlockOn(CallAdd(ref, ctx, 5));
  EXPECT_EQ(v, 5);
  EXPECT_EQ(f.sim.Now(), before);  // no wire crossing, no modeled cost
  EXPECT_EQ(f.rt->stats().local_invocations, 1);
  EXPECT_EQ(f.rt->stats().remote_invocations, 0);
}

TEST(RuntimeTest, RemoteInvocationPaysRpcCosts) {
  RuntimeFixture f;
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx, 1_MiB, MachineId{1}));
  const SimTime before = f.sim.Now();
  const int64_t v = f.sim.BlockOn(CallAdd(ref, ctx, 7));
  EXPECT_EQ(v, 7);
  // At least a round trip: 2 x (1us + 5us).
  EXPECT_GE(f.sim.Now() - before, 12_us);
  EXPECT_EQ(f.rt->stats().remote_invocations, 1);
}

TEST(RuntimeTest, InvocationsSeeSharedState) {
  RuntimeFixture f;
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx));
  EXPECT_EQ(f.sim.BlockOn(CallAdd(ref, ctx, 1)), 1);
  EXPECT_EQ(f.sim.BlockOn(CallAdd(ref, ctx, 2)), 3);
  EXPECT_EQ(f.sim.BlockOn(CallAdd(ref, ctx, 3)), 6);
}

TEST(RuntimeTest, MigrationMovesMemoryCharge) {
  RuntimeFixture f;
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx, 64_MiB, MachineId{0}));
  EXPECT_EQ(f.cluster.machine(0).memory().used(), 64_MiB);
  const Status s = f.sim.BlockOn(f.rt->Migrate(ref.id(), 1));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(ref.Location(), 1u);
  EXPECT_EQ(f.cluster.machine(0).memory().used(), 0);
  EXPECT_EQ(f.cluster.machine(1).memory().used(), 64_MiB);
  EXPECT_EQ(f.rt->stats().migrations, 1);
}

TEST(RuntimeTest, SmallProcletMigratesSubMillisecond) {
  RuntimeFixture f;
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx, 64_KiB, MachineId{0}));
  const SimTime before = f.sim.Now();
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(ref.id(), 1)).ok());
  EXPECT_LT(f.sim.Now() - before, 1_ms);  // the Fig. 1 property
}

TEST(RuntimeTest, TenMiBProcletMigratesInAFewMilliseconds) {
  RuntimeFixture f;
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx, 10_MiB, MachineId{0}));
  const SimTime before = f.sim.Now();
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(ref.id(), 1)).ok());
  const Duration took = f.sim.Now() - before;
  EXPECT_GT(took, 500_us);  // dominated by the 10 MiB wire copy
  EXPECT_LT(took, 5_ms);    // "a few milliseconds" (§2)
}

TEST(RuntimeTest, MigrateToSameMachineIsNoop) {
  RuntimeFixture f;
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx, 1_MiB, MachineId{0}));
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(ref.id(), 0)).ok());
  EXPECT_EQ(f.rt->stats().migrations, 0);
}

TEST(RuntimeTest, MigrationFailsWhenDestinationFull) {
  RuntimeFixture f(2, 1_GiB);
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx, 512_MiB, MachineId{0}));
  EXPECT_TRUE(f.cluster.machine(1).memory().TryCharge(900_MiB));
  const Status s = f.sim.BlockOn(f.rt->Migrate(ref.id(), 1));
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ref.Location(), 0u);  // unchanged
  EXPECT_EQ(f.rt->stats().failed_migrations, 1);
  // Proclet still usable.
  EXPECT_EQ(f.sim.BlockOn(CallAdd(ref, ctx, 2)), 2);
}

Task<> MigrateConcurrently(RuntimeFixture& f, Ref<CounterProclet> ref,
                           std::vector<int64_t>& results) {
  // Start a slow call, then migrate mid-call, then call again.
  Fiber slow = f.sim.Spawn(
      [](RuntimeFixture* fx, Ref<CounterProclet> r,
         std::vector<int64_t>* out) -> Task<> {
        const Ctx ctx = fx->rt->CtxOn(0);
        const int64_t v = co_await r.Call(
            ctx, [fx](CounterProclet& p) -> Task<int64_t> {
              return p.SlowAdd(fx->sim, 1, 5_ms);
            });
        out->push_back(v);
      }(&f, ref, &results),
      "slow_caller");
  co_await f.sim.Sleep(1_ms);  // let the slow call get in flight
  const Status s = co_await f.rt->Migrate(ref.id(), 1);
  EXPECT_TRUE(s.ok());
  results.push_back(-1);  // marker: migration finished
  co_await slow.Join();
}

TEST(RuntimeTest, MigrationDrainsInFlightCalls) {
  RuntimeFixture f;
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx, 1_MiB, MachineId{0}));
  std::vector<int64_t> results;
  f.sim.BlockOn(MigrateConcurrently(f, ref, results));
  // The in-flight call completed (value 1) before migration finished (-1).
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], 1);
  EXPECT_EQ(results[1], -1);
  EXPECT_EQ(ref.Location(), 1u);
}

Task<> CallDuringMigration(RuntimeFixture& f, Ref<CounterProclet> ref,
                           SimTime& call_done, Status& mig_status) {
  // Launch migration of a large proclet, then call while it is in flight.
  Fiber mig = f.sim.Spawn(
      [](RuntimeFixture* fx, Ref<CounterProclet> r, Status* out) -> Task<> {
        *out = co_await fx->rt->Migrate(r.id(), 1);
      }(&f, ref, &mig_status),
      "migrator");
  co_await f.sim.Sleep(100_us);  // migration is now copying the heap
  const Ctx ctx = f.rt->CtxOn(0);
  (void)co_await CallAdd(ref, ctx, 1);
  call_done = f.sim.Now();
  co_await mig.Join();
}

TEST(RuntimeTest, CallsBlockDuringMigrationThenSucceed) {
  RuntimeFixture f;
  const Ctx ctx = f.rt->CtxOn(0);
  // 32 MiB: migration takes ~2.9ms, so the call at t+100us must wait.
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx, 32_MiB, MachineId{0}));
  SimTime call_done;
  Status mig_status;
  const SimTime start = f.sim.Now();
  f.sim.BlockOn(CallDuringMigration(f, ref, call_done, mig_status));
  EXPECT_TRUE(mig_status.ok());
  EXPECT_GT(call_done - start, 2_ms);  // blocked until migration completed
  EXPECT_EQ(ref.Location(), 1u);
}

TEST(RuntimeTest, StaleCacheBouncesAndRecovers) {
  RuntimeFixture f(3);
  const Ctx ctx2 = f.rt->CtxOn(2);
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx2, 1_MiB, MachineId{0}));
  // Prime machine 2's cache with location 0.
  EXPECT_EQ(f.sim.BlockOn(CallAdd(ref, ctx2, 1)), 1);
  // Move the proclet; machine 2's cache is now stale.
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(ref.id(), 1)).ok());
  EXPECT_EQ(f.sim.BlockOn(CallAdd(ref, ctx2, 1)), 2);
  EXPECT_GE(f.rt->stats().bounces, 1);
}

TEST(RuntimeTest, DestroyReleasesMemoryAndFailsFutureCalls) {
  RuntimeFixture f;
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx, 50_MiB, MachineId{1}));
  EXPECT_EQ(f.cluster.machine(1).memory().used(), 50_MiB);
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Destroy(ctx, ref.id())).ok());
  EXPECT_EQ(f.cluster.machine(1).memory().used(), 0);
  EXPECT_EQ(f.rt->LocationOf(ref.id()), kInvalidMachineId);

  bool threw = false;
  f.sim.BlockOn([](RuntimeFixture* fx, Ref<CounterProclet> r, bool* out) -> Task<> {
    try {
      (void)co_await CallAdd(r, fx->rt->CtxOn(0), 1);
    } catch (const ProcletGoneError&) {
      *out = true;
    }
  }(&f, ref, &threw));
  EXPECT_TRUE(threw);
}

TEST(RuntimeTest, DestroyIsIdempotentish) {
  RuntimeFixture f;
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx));
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Destroy(ctx, ref.id())).ok());
  EXPECT_EQ(f.sim.BlockOn(f.rt->Destroy(ctx, ref.id())).code(), StatusCode::kNotFound);
}

TEST(RuntimeTest, MaintenanceBlocksCallsUntilEnd) {
  RuntimeFixture f;
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx, 1_MiB, MachineId{0}));
  EXPECT_TRUE(f.sim.BlockOn(f.rt->BeginMaintenance(ref.id())).ok());

  SimTime call_done = SimTime::Max();
  f.sim.Spawn([](RuntimeFixture* fx, Ref<CounterProclet> r, SimTime* out) -> Task<> {
    (void)co_await CallAdd(r, fx->rt->CtxOn(0), 1);
    *out = fx->sim.Now();
  }(&f, ref, &call_done),
              "blocked_caller");
  f.sim.RunUntil(f.sim.Now() + 10_ms);
  EXPECT_EQ(call_done, SimTime::Max());  // still gated

  // Exclusive access is usable during maintenance.
  auto* p = f.rt->UnsafeGet<CounterProclet>(ref.id());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->value(), 0);

  f.rt->EndMaintenance(ref.id());
  f.sim.RunUntilIdle();
  EXPECT_NE(call_done, SimTime::Max());
}

TEST(RuntimeTest, ConcurrentMaintenanceIsRejected) {
  RuntimeFixture f;
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(ctx));
  EXPECT_TRUE(f.sim.BlockOn(f.rt->BeginMaintenance(ref.id())).ok());
  EXPECT_EQ(f.sim.BlockOn(f.rt->BeginMaintenance(ref.id())).code(),
            StatusCode::kAborted);
  EXPECT_EQ(f.sim.BlockOn(f.rt->Migrate(ref.id(), 1)).code(), StatusCode::kAborted);
  f.rt->EndMaintenance(ref.id());
}

TEST(RuntimeTest, AffinityTracksRemoteTrafficFromProclets) {
  RuntimeFixture f;
  Ctx proclet_ctx = f.rt->CtxOn(0);
  proclet_ctx.caller_proclet = 777;  // pretend we run inside proclet 777
  Ref<CounterProclet> ref = f.sim.BlockOn(f.MakeCounter(f.rt->CtxOn(0), 1_MiB,
                                                        MachineId{1}));
  (void)f.sim.BlockOn(CallAdd(ref, proclet_ctx, 1));
  EXPECT_GT(f.rt->AffinityBytes(777, ref.id()), 0);
  EXPECT_GT(f.rt->AffinityBytes(ref.id(), 777), 0);
  EXPECT_EQ(f.rt->AffinityBytes(777, 12345), 0);
}

TEST(RuntimeTest, ProcletsOnListsByMachine) {
  RuntimeFixture f;
  const Ctx ctx = f.rt->CtxOn(0);
  Ref<CounterProclet> a = f.sim.BlockOn(f.MakeCounter(ctx, 1_MiB, MachineId{0}));
  Ref<CounterProclet> b = f.sim.BlockOn(f.MakeCounter(ctx, 1_MiB, MachineId{1}));
  Ref<CounterProclet> c = f.sim.BlockOn(f.MakeCounter(ctx, 1_MiB, MachineId{1}));
  EXPECT_EQ(f.rt->ProcletsOn(0), (std::vector<ProcletId>{a.id()}));
  EXPECT_EQ(f.rt->ProcletsOn(1), (std::vector<ProcletId>{b.id(), c.id()}));
  EXPECT_EQ(f.rt->AllProclets().size(), 3u);
}

}  // namespace
}  // namespace quicksand
