#include <gtest/gtest.h>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/proclet/memory_proclet.h"

namespace quicksand {
namespace {

// Every failed migration must increment failed_migrations AND leave no stale
// memory charge behind — in particular the lazy path's deliberate
// double-charge (src + dst during the background copy) must unwind on every
// failure path.

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;
  std::unique_ptr<FaultInjector> faults;

  explicit Fixture(bool lazy, int64_t mem1 = 2_GiB, int64_t mem2 = 2_GiB) {
    MachineSpec spec;
    spec.memory_bytes = 2_GiB;
    cluster.AddMachine(spec);  // machine 0: controller, never fails
    spec.memory_bytes = mem1;
    cluster.AddMachine(spec);
    spec.memory_bytes = mem2;
    cluster.AddMachine(spec);
    RuntimeConfig config;
    config.lazy_migration = lazy;
    rt = std::make_unique<Runtime>(sim, cluster, config);
    faults = std::make_unique<FaultInjector>(sim, cluster);
    rt->AttachFaultInjector(*faults);
  }

  Ref<MemoryProclet> MakePinned(int64_t heap, MachineId where) {
    PlacementRequest req;
    req.heap_bytes = heap;
    req.pinned = where;
    return *sim.BlockOn(rt->Create<MemoryProclet>(rt->CtxOn(0), req));
  }

  int64_t Used(MachineId m) { return cluster.machine(m).memory().used(); }
};

TEST(MigrationFailureTest, DestinationOutOfMemoryIsCountedAndUnwound) {
  Fixture f(/*lazy=*/false, /*mem1=*/2_GiB, /*mem2=*/64_MiB);
  Ref<MemoryProclet> p = f.MakePinned(512_MiB, 1);
  const Status s = f.sim.BlockOn(f.rt->Migrate(p.id(), 2));
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(f.rt->stats().failed_migrations, 1);
  EXPECT_EQ(p.Location(), 1u);
  EXPECT_EQ(f.Used(1), 512_MiB);
  EXPECT_EQ(f.Used(2), 0);
  // The gate reopened: the proclet is still invocable.
  auto call = p.Call(f.rt->CtxOn(0), [](MemoryProclet& m) -> Task<int64_t> {
    co_return static_cast<int64_t>(m.object_count());
  });
  EXPECT_EQ(f.sim.BlockOn(std::move(call)), 0);
}

TEST(MigrationFailureTest, ClosedGateIsCounted) {
  Fixture f(/*lazy=*/false);
  Ref<MemoryProclet> p = f.MakePinned(1_MiB, 1);
  ASSERT_TRUE(f.sim.BlockOn(f.rt->BeginMaintenance(p.id())).ok());
  const Status s = f.sim.BlockOn(f.rt->Migrate(p.id(), 2));
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(f.rt->stats().failed_migrations, 1);
  f.rt->EndMaintenance(p.id());
}

TEST(MigrationFailureTest, FailedDestinationIsCounted) {
  Fixture f(/*lazy=*/false);
  Ref<MemoryProclet> p = f.MakePinned(1_MiB, 1);
  f.faults->FailNow(2);
  const Status s = f.sim.BlockOn(f.rt->Migrate(p.id(), 2));
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(f.rt->stats().failed_migrations, 1);
  EXPECT_EQ(p.Location(), 1u);
}

TEST(MigrationFailureTest, DestinationDiesMidTransferUnwindsDstCharge) {
  Fixture f(/*lazy=*/false);
  Ref<MemoryProclet> p = f.MakePinned(256_MiB, 1);
  // 256 MiB takes ~21ms on the wire; the destination dies at 5ms.
  f.faults->ScheduleCrash(f.sim.Now() + 5_ms, 2);
  const Status s = f.sim.BlockOn(f.rt->Migrate(p.id(), 2));
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(f.rt->stats().failed_migrations, 1);
  EXPECT_EQ(p.Location(), 1u);
  EXPECT_EQ(f.Used(1), 256_MiB);
  EXPECT_EQ(f.Used(2), 0);  // the speculative dst charge was released
  EXPECT_FALSE(f.rt->IsLost(p.id()));
  // Still alive and invocable at the source.
  auto call = p.Call(f.rt->CtxOn(0), [](MemoryProclet& m) -> Task<int64_t> {
    co_return static_cast<int64_t>(m.object_count());
  });
  EXPECT_EQ(f.sim.BlockOn(std::move(call)), 0);
}

TEST(MigrationFailureTest, SourceDiesMidLazyCopyWritesOffProclet) {
  Fixture f(/*lazy=*/true);
  Ref<MemoryProclet> p = f.MakePinned(128_MiB, 1);
  ASSERT_TRUE(f.sim.BlockOn(f.rt->Migrate(p.id(), 2)).ok());
  // Migrate returned (lazy): both machines hold the charge while the
  // background copy runs (~10ms). The source dies 2ms in; the copy can
  // never complete, so the proclet at the destination has an unfillable
  // hole and must be written off.
  EXPECT_EQ(f.Used(1), 128_MiB);
  EXPECT_EQ(f.Used(2), 128_MiB);
  f.faults->ScheduleCrash(f.sim.Now() + 2_ms, 1);
  f.sim.RunUntilIdle();
  EXPECT_EQ(f.Used(1), 0);
  EXPECT_EQ(f.Used(2), 0);
  EXPECT_TRUE(f.rt->IsLost(p.id()));
  EXPECT_EQ(f.rt->stats().lost_proclets, 1);
  EXPECT_EQ(f.rt->stats().lazy_copies_completed, 0);
}

TEST(MigrationFailureTest, DestinationDiesMidLazyCopyReleasesBothCharges) {
  Fixture f(/*lazy=*/true);
  Ref<MemoryProclet> p = f.MakePinned(128_MiB, 1);
  ASSERT_TRUE(f.sim.BlockOn(f.rt->Migrate(p.id(), 2)).ok());
  f.faults->ScheduleCrash(f.sim.Now() + 2_ms, 2);
  f.sim.RunUntilIdle();
  // The crash handler wrote the proclet off (it lived at machine 2); the
  // aborted copy must still release the source's half of the double charge.
  EXPECT_EQ(f.Used(1), 0);
  EXPECT_EQ(f.Used(2), 0);
  EXPECT_TRUE(f.rt->IsLost(p.id()));
  EXPECT_EQ(f.rt->stats().lost_proclets, 1);
}

}  // namespace
}  // namespace quicksand
