// Epoch fencing at the runtime layer: every directory rebind bumps the
// proclet's epoch, stale-epoch migrations abort instead of yanking the
// proclet from its new owner, gray-failure declaration fences hosted
// proclets, and FencedKvProclet turns at-least-once retries into
// exactly-once applies.

#include <gtest/gtest.h>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/durability/recovery_coordinator.h"
#include "quicksand/durability/replication.h"
#include "quicksand/health/fencing.h"
#include "quicksand/proclet/fenced_kv_proclet.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;
  std::unique_ptr<FaultInjector> faults;

  explicit Fixture(int machines = 4) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 4;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
    faults = std::make_unique<FaultInjector>(sim, cluster);
    rt->AttachFaultInjector(*faults);
  }

  Ref<FencedKvProclet> MakeKv(MachineId where) {
    PlacementRequest req;
    req.heap_bytes = 1_MiB;
    req.pinned = where;
    return *sim.BlockOn(rt->Create<FencedKvProclet>(rt->CtxOn(0), req));
  }
};

Task<FencedKvProclet::PutResult> Put(Ref<FencedKvProclet> kv, Ctx ctx,
                                     uint64_t epoch, uint64_t rid,
                                     uint64_t key, int64_t value) {
  auto call = kv.Call(
      ctx, [epoch, rid, key, value](FencedKvProclet& p)
      -> Task<FencedKvProclet::PutResult> {
        co_return p.Put(epoch, rid, key, value);
      });
  co_return co_await std::move(call);
}

TEST(FencingTest, EpochStartsAtOneAndBumpsOnMigration) {
  Fixture f;
  Ref<FencedKvProclet> kv = f.MakeKv(1);
  EXPECT_EQ(f.rt->EpochOf(kv.id()), 1u);

  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(kv.id(), 2)).ok());
  EXPECT_EQ(f.rt->EpochOf(kv.id()), 2u);
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(kv.id(), 3)).ok());
  EXPECT_EQ(f.rt->EpochOf(kv.id()), 3u);

  // Gone proclets have no epoch.
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Destroy(f.rt->CtxOn(0), kv.id())).ok());
  EXPECT_EQ(f.rt->EpochOf(kv.id()), 0u);
}

TEST(FencingTest, StaleEpochMigrationIsFenced) {
  Fixture f;
  Ref<FencedKvProclet> kv = f.MakeKv(1);

  const uint64_t stale = f.rt->EpochOf(kv.id());  // 1
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(kv.id(), 2, stale)).ok());

  // Replaying the same command (same token) after the rebind must abort —
  // this is what makes migration idempotent under at-least-once delivery.
  const Status replay = f.sim.BlockOn(f.rt->Migrate(kv.id(), 3, stale));
  EXPECT_EQ(replay.code(), StatusCode::kAborted);
  EXPECT_EQ(f.rt->LocationOf(kv.id()), 2u);
  EXPECT_EQ(f.rt->stats().fenced_migrations, 1);

  // The current token still works.
  EXPECT_TRUE(
      f.sim.BlockOn(f.rt->Migrate(kv.id(), 3, f.rt->EpochOf(kv.id()))).ok());
}

TEST(FencingTest, DuplicateRequestIdsApplyExactlyOnce) {
  Fixture f;
  Ref<FencedKvProclet> kv = f.MakeKv(1);
  Ctx ctx = f.rt->CtxOn(0);
  const uint64_t epoch = f.rt->EpochOf(kv.id());

  FencedKvProclet::PutResult first =
      f.sim.BlockOn(Put(kv, ctx, epoch, /*rid=*/7, /*key=*/1, /*value=*/10));
  EXPECT_TRUE(first.applied);

  // An at-least-once retry of the same request: acked, not re-applied.
  FencedKvProclet::PutResult retry =
      f.sim.BlockOn(Put(kv, ctx, epoch, /*rid=*/7, /*key=*/1, /*value=*/10));
  EXPECT_FALSE(retry.applied);
  EXPECT_TRUE(retry.duplicate);

  FencedKvProclet* p = f.rt->UnsafeGet<FencedKvProclet>(kv.id());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->ApplyCount(1), 1);
  EXPECT_EQ(*p->Get(1), 10);
  EXPECT_EQ(p->guard().duplicates(), 1);
}

TEST(FencingTest, StaleEpochWriteIsFencedAfterMigration) {
  Fixture f;
  Ref<FencedKvProclet> kv = f.MakeKv(1);
  Ctx ctx = f.rt->CtxOn(0);

  const uint64_t old_epoch = f.rt->EpochOf(kv.id());
  EXPECT_TRUE(f.sim.BlockOn(Put(kv, ctx, old_epoch, 1, 1, 10)).applied);
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(kv.id(), 2)).ok());

  // A client that resolved before the migration writes with the old token.
  FencedKvProclet::PutResult stale =
      f.sim.BlockOn(Put(kv, ctx, old_epoch, 2, 1, 99));
  EXPECT_TRUE(stale.fenced);
  EXPECT_FALSE(stale.applied);
  EXPECT_EQ(f.rt->stats().fenced_rpcs, 1);

  FencedKvProclet* p = f.rt->UnsafeGet<FencedKvProclet>(kv.id());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p->Get(1), 10);  // the stale write did not land
}

TEST(FencingTest, DeclareMachineDeadFencesHostedProclets) {
  Fixture f;
  Ref<FencedKvProclet> kv = f.MakeKv(1);
  Ref<FencedKvProclet> other = f.MakeKv(2);

  f.rt->DeclareMachineDead(1);

  EXPECT_EQ(f.rt->stats().declared_dead, 1);
  EXPECT_TRUE(f.rt->MachineConsideredDead(1));
  EXPECT_TRUE(f.rt->IsLost(kv.id()));
  EXPECT_FALSE(f.rt->IsLost(other.id()));
  // The host did NOT fail-stop — it is fenced while possibly still running.
  EXPECT_FALSE(f.cluster.machine(1).failed());
  EXPECT_FALSE(f.cluster.machine(1).accepting());

  // The corpse is marked fenced, so a gray-failed host still holding the
  // object refuses to serve (FencedKvProclet checks fenced()).
  EXPECT_EQ(f.rt->LocationOf(kv.id()), kInvalidMachineId);

  // Idempotent, and a later "real" crash of the same machine is a no-op.
  f.rt->DeclareMachineDead(1);
  f.rt->HandleMachineFailure(1);
  EXPECT_EQ(f.rt->stats().declared_dead, 1);
  EXPECT_EQ(f.rt->stats().crashes, 0);
}

TEST(FencingTest, PromotedBackupBumpsEpochAndInheritsDedup) {
  Fixture f;
  ReplicationManager replication(*f.rt);
  RecoveryCoordinator recovery(*f.rt);
  recovery.AttachReplication(&replication);
  replication.Arm(*f.faults);
  recovery.Arm(*f.faults);

  Ref<FencedKvProclet> kv = f.MakeKv(1);
  Ctx ctx = f.rt->CtxOn(0);
  ASSERT_TRUE(f.sim
                  .BlockOn(replication.ReplicateAs<FencedKvProclet>(ctx,
                                                                    kv.id()))
                  .ok());

  const uint64_t epoch1 = f.rt->EpochOf(kv.id());
  EXPECT_TRUE(f.sim.BlockOn(Put(kv, ctx, epoch1, 1, 1, 10)).applied);
  EXPECT_TRUE(f.sim.BlockOn(Put(kv, ctx, epoch1, 2, 2, 20)).applied);

  f.faults->FailNow(1);
  f.sim.RunFor(Duration::Millis(5));

  // Promoted elsewhere, at a fresh epoch.
  const MachineId now_at = f.rt->LocationOf(kv.id());
  ASSERT_NE(now_at, kInvalidMachineId);
  EXPECT_NE(now_at, 1u);
  const uint64_t epoch2 = f.rt->EpochOf(kv.id());
  EXPECT_GT(epoch2, epoch1);

  // Old-epoch writes are fenced; retries of ACKED writes dedup even though
  // they now hit the promoted backup (the log witnessed their ids).
  EXPECT_TRUE(f.sim.BlockOn(Put(kv, ctx, epoch1, 3, 3, 30)).fenced);
  FencedKvProclet::PutResult replayed =
      f.sim.BlockOn(Put(kv, ctx, epoch2, 1, 1, 10));
  EXPECT_TRUE(replayed.duplicate);
  EXPECT_FALSE(replayed.applied);

  FencedKvProclet* p = f.rt->UnsafeGet<FencedKvProclet>(kv.id());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->ApplyCount(1), 1);
  EXPECT_EQ(*p->Get(1), 10);
  EXPECT_EQ(*p->Get(2), 20);
}

}  // namespace
}  // namespace quicksand
