#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"
#include "quicksand/proclet/memory_proclet.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(bool lazy) {
    for (int i = 0; i < 2; ++i) {
      MachineSpec spec;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    RuntimeConfig config;
    config.lazy_migration = lazy;
    rt = std::make_unique<Runtime>(sim, cluster, config);
  }

  Ref<MemoryProclet> Make(int64_t heap, MachineId where) {
    PlacementRequest req;
    req.heap_bytes = heap;
    req.pinned = where;
    return *sim.BlockOn(rt->Create<MemoryProclet>(rt->CtxOn(0), req));
  }
};

TEST(LazyMigrationTest, BlockingWindowIsIndependentOfHeapSize) {
  Fixture f(/*lazy=*/true);
  Ref<MemoryProclet> big = f.Make(256_MiB, 0);
  const SimTime start = f.sim.Now();
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(big.id(), 1)).ok());
  // Migrate returns when the proclet is live at the destination: fixed
  // overhead + header only, not the ~20ms the heap copy takes.
  EXPECT_LT(f.sim.Now() - start, 1_ms);
  EXPECT_EQ(big.Location(), 1u);
}

TEST(LazyMigrationTest, DoubleChargeUntilCopyCompletes) {
  Fixture f(/*lazy=*/true);
  Ref<MemoryProclet> p = f.Make(128_MiB, 0);
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(p.id(), 1)).ok());
  // Copy still in flight: both machines hold the charge.
  EXPECT_EQ(f.cluster.machine(0).memory().used(), 128_MiB);
  EXPECT_EQ(f.cluster.machine(1).memory().used(), 128_MiB);
  f.sim.RunUntilIdle();
  EXPECT_EQ(f.cluster.machine(0).memory().used(), 0);
  EXPECT_EQ(f.cluster.machine(1).memory().used(), 128_MiB);
  EXPECT_EQ(f.rt->stats().lazy_copies_completed, 1);
  EXPECT_GT(f.rt->stats().lazy_copy_latency.Max(), 5_ms);
}

TEST(LazyMigrationTest, CallsProceedDuringBackgroundCopy) {
  Fixture f(/*lazy=*/true);
  Ref<MemoryProclet> p = f.Make(256_MiB, 0);
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(p.id(), 1)).ok());
  // Invoke immediately, while ~20ms of copy remains. The call is local at
  // the destination; only a directory lookup (microseconds) is paid — it
  // must not wait out the background copy.
  const SimTime before = f.sim.Now();
  auto call = p.Call(f.rt->CtxOn(1), [](MemoryProclet& m) -> Task<int64_t> {
    co_return static_cast<int64_t>(m.object_count());
  });
  EXPECT_EQ(f.sim.BlockOn(std::move(call)), 0);
  EXPECT_LT(f.sim.Now() - before, 1_ms);
}

TEST(LazyMigrationTest, EagerModeStillBlocksForCopy) {
  Fixture f(/*lazy=*/false);
  Ref<MemoryProclet> p = f.Make(256_MiB, 0);
  const SimTime start = f.sim.Now();
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(p.id(), 1)).ok());
  EXPECT_GT(f.sim.Now() - start, 10_ms);  // ~21ms wire time for 256 MiB
  EXPECT_EQ(f.cluster.machine(0).memory().used(), 0);
  EXPECT_EQ(f.rt->stats().lazy_copies_completed, 0);
}

TEST(LazyMigrationTest, DestroyDuringCopyStaysConsistent) {
  Fixture f(/*lazy=*/true);
  Ref<MemoryProclet> p = f.Make(128_MiB, 0);
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(p.id(), 1)).ok());
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Destroy(f.rt->CtxOn(0), p.id())).ok());
  f.sim.RunUntilIdle();  // copy finishes after destruction
  EXPECT_EQ(f.cluster.machine(0).memory().used(), 0);
  EXPECT_EQ(f.cluster.machine(1).memory().used(), 0);
}

TEST(LazyMigrationTest, RepeatedLazyMigrationsConserveMemory) {
  Fixture f(/*lazy=*/true);
  Ref<MemoryProclet> p = f.Make(64_MiB, 0);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(p.id(), (i % 2 == 0) ? 1 : 0)).ok());
    f.sim.RunUntilIdle();  // let each copy land before the next hop
  }
  EXPECT_EQ(f.cluster.machine(0).memory().used() +
                f.cluster.machine(1).memory().used(),
            64_MiB);
  EXPECT_EQ(f.rt->stats().lazy_copies_completed, 6);
}

}  // namespace
}  // namespace quicksand
