#include <gtest/gtest.h>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/compute/dist_pool.h"
#include "quicksand/ds/sharded_map.h"
#include "quicksand/ds/sharded_vector.h"
#include "quicksand/proclet/compute_proclet.h"
#include "quicksand/proclet/memory_proclet.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;
  std::unique_ptr<FaultInjector> faults;

  explicit Fixture(int machines = 3, int64_t mem = 2_GiB) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 4;
      spec.memory_bytes = mem;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
    faults = std::make_unique<FaultInjector>(sim, cluster);
    rt->AttachFaultInjector(*faults);
  }

  Ref<MemoryProclet> MakePinned(int64_t heap, MachineId where) {
    PlacementRequest req;
    req.heap_bytes = heap;
    req.pinned = where;
    return *sim.BlockOn(rt->Create<MemoryProclet>(rt->CtxOn(0), req));
  }
};

// BlockOn aborts on uncaught exceptions, so expected throws are caught in a
// wrapper task and reported as a value.
enum class CallOutcome { kOk, kLost, kGone, kOther };

Task<CallOutcome> TryCall(Ref<MemoryProclet> p, Ctx ctx) {
  auto call = p.Call(ctx, [](MemoryProclet& m) -> Task<int64_t> {
    co_return static_cast<int64_t>(m.object_count());
  });
  try {
    (void)co_await std::move(call);
    co_return CallOutcome::kOk;
  } catch (const ProcletLostError&) {
    co_return CallOutcome::kLost;
  } catch (const ProcletGoneError&) {
    co_return CallOutcome::kGone;
  } catch (...) {
    co_return CallOutcome::kOther;
  }
}

TEST(FailureTest, CrashMarksHostedProcletsLostAndReleasesResources) {
  Fixture f;
  Ref<MemoryProclet> a = f.MakePinned(64_MiB, 1);
  Ref<MemoryProclet> b = f.MakePinned(32_MiB, 1);
  Ref<MemoryProclet> c = f.MakePinned(16_MiB, 2);
  EXPECT_EQ(f.cluster.machine(1).memory().used(), 96_MiB);

  f.faults->FailNow(1);

  EXPECT_EQ(f.rt->stats().crashes, 1);
  EXPECT_EQ(f.rt->stats().lost_proclets, 2);
  EXPECT_TRUE(f.rt->IsLost(a.id()));
  EXPECT_TRUE(f.rt->IsLost(b.id()));
  EXPECT_FALSE(f.rt->IsLost(c.id()));
  // The accounting no longer matters physically (the memory vanished with
  // the machine) but must not leak into survivors' books.
  EXPECT_EQ(f.cluster.machine(1).memory().used(), 0);
  EXPECT_EQ(f.cluster.machine(2).memory().used(), 16_MiB);
}

TEST(FailureTest, InvokeOnLostProcletThrowsProcletLostError) {
  Fixture f;
  Ref<MemoryProclet> p = f.MakePinned(1_MiB, 1);
  f.faults->FailNow(1);
  EXPECT_EQ(f.sim.BlockOn(TryCall(p, f.rt->CtxOn(0))), CallOutcome::kLost);
  // Deliberate destruction still reports Gone, not Lost.
  Ref<MemoryProclet> q = f.MakePinned(1_MiB, 2);
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Destroy(f.rt->CtxOn(0), q.id())).ok());
  EXPECT_EQ(f.sim.BlockOn(TryCall(q, f.rt->CtxOn(0))), CallOutcome::kGone);
}

TEST(FailureTest, InFlightInvocationFailsInsteadOfHanging) {
  Fixture f;
  Ref<MemoryProclet> p = f.MakePinned(1_MiB, 1);
  // A 10 MiB request takes ~839us on the wire; the machine dies at 100us,
  // mid-request. The invocation must resolve (as Lost), never hang.
  f.faults->ScheduleCrash(SimTime::Zero() + 100_us, 1);
  std::optional<CallOutcome> outcome;
  auto probe = [&]() -> Task<> {
    auto call = p.Call(
        f.rt->CtxOn(0),
        [](MemoryProclet& m) -> Task<int64_t> {
          co_return static_cast<int64_t>(m.object_count());
        },
        10_MiB);
    try {
      (void)co_await std::move(call);
      outcome = CallOutcome::kOk;
    } catch (const ProcletLostError&) {
      outcome = CallOutcome::kLost;
    } catch (...) {
      outcome = CallOutcome::kOther;
    }
  };
  f.sim.Spawn(probe(), "probe");
  f.sim.RunUntilIdle();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, CallOutcome::kLost);
}

TEST(FailureTest, CreateOnFailedMachineIsUnavailable) {
  Fixture f;
  f.faults->FailNow(1);
  PlacementRequest req;
  req.heap_bytes = 1_MiB;
  req.pinned = MachineId{1};
  Result<Ref<MemoryProclet>> r =
      f.sim.BlockOn(f.rt->Create<MemoryProclet>(f.rt->CtxOn(0), req));
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(FailureTest, PlacementAvoidsRevokedMachines) {
  Fixture f;
  f.faults->ScheduleRevocation(f.sim.Now(), 1, 50_ms);
  for (int i = 0; i < 6; ++i) {
    PlacementRequest req;
    req.heap_bytes = 1_MiB;
    Result<Ref<MemoryProclet>> r =
        f.sim.BlockOn(f.rt->Create<MemoryProclet>(f.rt->CtxOn(0), req));
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r->Location(), 1u);
  }
  EXPECT_EQ(f.faults->revocations(), 1);
}

TEST(FailureTest, DistPoolDropsLostMembersAndKeepsServing) {
  Fixture f;
  DistPool::Options options;
  options.initial_proclets = 3;
  DistPool pool = *f.sim.BlockOn(DistPool::Create(f.rt->CtxOn(0), options));
  ASSERT_EQ(pool.members().size(), 3u);

  // Fail a member's machine — any member not on machine 0 (the controller,
  // which is outside the fail-stop model). Placement spread the members, so
  // survivors remain elsewhere.
  MachineId victim = kInvalidMachineId;
  for (const auto& member : pool.members()) {
    if (member.Location() != 0) {
      victim = member.Location();
      break;
    }
  }
  ASSERT_NE(victim, kInvalidMachineId);
  f.faults->FailNow(victim);

  int64_t ran = 0;
  auto submit = pool.Submit(f.rt->CtxOn(0), [&ran](Ctx) -> Task<> {
    ++ran;
    co_return;
  });
  EXPECT_TRUE(f.sim.BlockOn(std::move(submit)).ok());
  f.sim.RunUntilIdle();
  EXPECT_EQ(ran, 1);
  EXPECT_GE(pool.lost_members(), 1);
  for (const auto& member : pool.members()) {
    EXPECT_FALSE(f.rt->IsLost(member.id()));
  }

  // Submit already reaped the lost member, so RecoverLost has nothing to do.
  const int replaced = f.sim.BlockOn(pool.RecoverLost(f.rt->CtxOn(0)));
  EXPECT_EQ(replaced, 0);
  f.sim.BlockOn(pool.Shutdown(f.rt->CtxOn(0)));
}

TEST(FailureTest, ShardedVectorSurfacesDataLossWithRange) {
  Fixture f;
  ShardedVector<int64_t>::Options options;
  options.max_shard_bytes = 256;  // force several shards
  ShardedVector<int64_t> vec =
      *f.sim.BlockOn(ShardedVector<int64_t>::Create(f.rt->CtxOn(0), options));
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.sim.BlockOn(vec.PushBack(f.rt->CtxOn(0), i)).ok());
  }
  // Fail a machine hosting a non-index shard: element 0's home (unless that
  // collides with the shard index's machine, in which case use the tail's).
  const MachineId index_home = f.rt->LocationOf(vec.index().id());
  MachineId victim = kInvalidMachineId;
  ProcletId victim_shard = kInvalidProcletId;
  f.sim.BlockOn(vec.router().Refresh(f.rt->CtxOn(0)));
  for (const ShardInfo& shard : vec.router().cached_shards()) {
    const MachineId home = f.rt->LocationOf(shard.proclet);
    if (home != index_home) {
      victim = home;
      victim_shard = shard.proclet;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidMachineId);
  f.faults->FailNow(victim);
  ASSERT_TRUE(f.rt->IsLost(victim_shard));

  // Reads of every index are either served by a surviving shard or answered
  // DataLoss — never a hang, never an abort.
  int64_t served = 0;
  int64_t data_loss = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    Result<int64_t> r = f.sim.BlockOn(vec.Get(f.rt->CtxOn(0), i));
    if (r.ok()) {
      EXPECT_EQ(*r, static_cast<int64_t>(i));
      ++served;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
      ++data_loss;
    }
  }
  EXPECT_GT(served, 0);
  EXPECT_GT(data_loss, 0);
}

TEST(FailureTest, ShardedMapSurfacesDataLoss) {
  Fixture f(2);
  ShardedMap<int64_t, int64_t> map =
      *f.sim.BlockOn(ShardedMap<int64_t, int64_t>::Create(f.rt->CtxOn(0)));
  for (int64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(f.sim.BlockOn(map.Put(f.rt->CtxOn(0), k, k * k)).ok());
  }
  // The single shard covers the whole space; failing its host loses all keys.
  f.sim.BlockOn(map.router().Refresh(f.rt->CtxOn(0)));
  ASSERT_EQ(map.router().cached_shards().size(), 1u);
  const MachineId shard_home =
      f.rt->LocationOf(map.router().cached_shards().front().proclet);
  const MachineId index_home = f.rt->LocationOf(map.index().id());
  if (shard_home == index_home) {
    GTEST_SKIP() << "shard and index share a machine; covered by vector test";
  }
  f.faults->FailNow(shard_home);
  Result<int64_t> r = f.sim.BlockOn(map.Get(f.rt->CtxOn(0), int64_t{7}));
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace quicksand
