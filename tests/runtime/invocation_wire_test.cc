// Wire-accounting coverage: every remote invocation must charge the fabric
// for exactly the bytes the cost model promises (argument payload + header
// out, result payload + header back), and bounces must pay for their
// redirects. These invariants keep every figure's communication costs
// honest.

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"
#include "quicksand/proclet/memory_proclet.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  Fixture() {
    for (int i = 0; i < 3; ++i) {
      MachineSpec spec;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ref<MemoryProclet> Make(MachineId where) {
    PlacementRequest req;
    req.heap_bytes = 4096;
    req.pinned = where;
    return *sim.BlockOn(rt->Create<MemoryProclet>(rt->CtxOn(0), req));
  }
};

TEST(InvocationWireTest, LocalCallsTouchNoWire) {
  Fixture f;
  Ref<MemoryProclet> p = f.Make(0);
  const int64_t before = f.cluster.fabric().total_bytes_sent();
  for (int i = 0; i < 10; ++i) {
    auto call = p.Call(f.rt->CtxOn(0), [](MemoryProclet& m) -> Task<int64_t> {
      co_return 1;
    });
    (void)f.sim.BlockOn(std::move(call));
  }
  EXPECT_EQ(f.cluster.fabric().total_bytes_sent(), before);
}

TEST(InvocationWireTest, RemoteCallChargesRequestAndResponse) {
  Fixture f;
  Ref<MemoryProclet> p = f.Make(1);
  // Prime the location cache so the directory lookup doesn't pollute the
  // measurement.
  auto warm = p.Call(f.rt->CtxOn(0), [](MemoryProclet&) -> Task<int64_t> {
    co_return 0;
  });
  (void)f.sim.BlockOn(std::move(warm));

  const int64_t before = f.cluster.fabric().total_bytes_sent();
  constexpr int64_t kRequestBytes = 5000;
  auto call = p.Call(
      f.rt->CtxOn(0),
      [](MemoryProclet&) -> Task<int64_t> { co_return 7; }, kRequestBytes);
  (void)f.sim.BlockOn(std::move(call));
  const int64_t sent = f.cluster.fabric().total_bytes_sent() - before;
  // Request: 5000 + 64 header. Response: sizeof(int64_t) + 64 header.
  EXPECT_EQ(sent, kRequestBytes + Rpc::kHeaderBytes + 8 + Rpc::kHeaderBytes);
}

TEST(InvocationWireTest, ResponsePayloadScalesWithResult) {
  Fixture f;
  Ref<MemoryProclet> p = f.Make(1);
  auto warm = p.Call(f.rt->CtxOn(0), [](MemoryProclet&) -> Task<int64_t> {
    co_return 0;
  });
  (void)f.sim.BlockOn(std::move(warm));

  const int64_t before = f.cluster.fabric().total_bytes_sent();
  auto call = p.Call(f.rt->CtxOn(0), [](MemoryProclet&) -> Task<std::string> {
    co_return std::string(10000, 'r');
  });
  (void)f.sim.BlockOn(std::move(call));
  const int64_t sent = f.cluster.fabric().total_bytes_sent() - before;
  // Request header only; response 10008 (string + length prefix) + header.
  EXPECT_EQ(sent, Rpc::kHeaderBytes + (10000 + 8) + Rpc::kHeaderBytes);
}

TEST(InvocationWireTest, BouncePaysRedirect) {
  Fixture f;
  Ref<MemoryProclet> p = f.Make(1);
  const Ctx ctx2 = f.rt->CtxOn(2);
  // Prime machine 2's cache with location 1.
  auto warm = p.Call(ctx2, [](MemoryProclet&) -> Task<int64_t> { co_return 0; });
  (void)f.sim.BlockOn(std::move(warm));
  // Migrate away; machine 2's next call bounces off machine 1.
  QS_CHECK(f.sim.BlockOn(f.rt->Migrate(p.id(), 0)).ok());

  const int64_t bounces_before = f.rt->stats().bounces;
  const int64_t before = f.cluster.fabric().total_bytes_sent();
  auto call = p.Call(ctx2, [](MemoryProclet&) -> Task<int64_t> { co_return 1; });
  (void)f.sim.BlockOn(std::move(call));
  EXPECT_EQ(f.rt->stats().bounces, bounces_before + 1);
  const int64_t sent = f.cluster.fabric().total_bytes_sent() - before;
  // Bounced request (header) + redirect (control msg) + directory re-lookup
  // (2 control msgs) + real request (header) + response (8 + header).
  const int64_t control = f.rt->config().control_message_bytes;
  EXPECT_EQ(sent, Rpc::kHeaderBytes + control + 2 * control + Rpc::kHeaderBytes + 8 +
                      Rpc::kHeaderBytes);
}

TEST(InvocationWireTest, AffinityRecordsRemoteTraffic) {
  Fixture f;
  Ref<MemoryProclet> a = f.Make(0);
  Ref<MemoryProclet> b = f.Make(1);
  Ctx from_a = f.rt->CtxOn(0);
  from_a.caller_proclet = a.id();
  auto call = b.Call(
      from_a, [](MemoryProclet&) -> Task<int64_t> { co_return 1; }, 1000);
  (void)f.sim.BlockOn(std::move(call));
  EXPECT_EQ(f.rt->AffinityBytes(a.id(), b.id()), 1000 + Rpc::kHeaderBytes);
}

TEST(InvocationWireTest, DirectoryLookupCountsControlMessages) {
  Fixture f;
  Ref<MemoryProclet> p = f.Make(1);
  const int64_t lookups_before = f.rt->stats().directory_lookups;
  // First call from machine 2: cache miss -> directory RPC.
  auto call = p.Call(f.rt->CtxOn(2), [](MemoryProclet&) -> Task<int64_t> {
    co_return 1;
  });
  (void)f.sim.BlockOn(std::move(call));
  EXPECT_EQ(f.rt->stats().directory_lookups, lookups_before + 1);
  // Second call: cache hit, no new lookup.
  auto again = p.Call(f.rt->CtxOn(2), [](MemoryProclet&) -> Task<int64_t> {
    co_return 1;
  });
  (void)f.sim.BlockOn(std::move(again));
  EXPECT_EQ(f.rt->stats().directory_lookups, lookups_before + 1);
}

}  // namespace
}  // namespace quicksand
