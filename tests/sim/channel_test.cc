#include "quicksand/sim/channel.h"

#include <vector>

#include <gtest/gtest.h>

#include "quicksand/sim/simulator.h"

namespace quicksand {
namespace {

Task<> SendAll(Channel<int>& ch, int n, Simulator& sim, Duration gap) {
  for (int i = 0; i < n; ++i) {
    const bool ok = co_await ch.Send(i);
    EXPECT_TRUE(ok);
    if (gap > Duration::Zero()) {
      co_await sim.Sleep(gap);
    }
  }
  ch.Close();
}

Task<> RecvAll(Channel<int>& ch, std::vector<int>& out) {
  for (;;) {
    std::optional<int> v = co_await ch.Recv();
    if (!v.has_value()) {
      break;
    }
    out.push_back(*v);
  }
}

TEST(ChannelTest, FifoDelivery) {
  Simulator sim;
  Channel<int> ch(sim, 4);
  std::vector<int> out;
  sim.Spawn(SendAll(ch, 10, sim, Duration::Zero()), "p");
  sim.Spawn(RecvAll(ch, out), "c");
  sim.RunUntilIdle();
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i], i);
  }
}

TEST(ChannelTest, BoundedCapacityBlocksProducer) {
  Simulator sim;
  Channel<int> ch(sim, 2);
  std::vector<int> out;
  Fiber producer = sim.Spawn(SendAll(ch, 10, sim, Duration::Zero()), "p");
  sim.RunUntilIdle();
  // Nobody is receiving: producer parks after filling 2 slots.
  EXPECT_FALSE(producer.done());
  EXPECT_EQ(ch.size(), 2u);
  sim.Spawn(RecvAll(ch, out), "c");
  sim.RunUntilIdle();
  EXPECT_TRUE(producer.done());
  EXPECT_EQ(out.size(), 10u);
}

TEST(ChannelTest, ConsumerBlocksUntilProduced) {
  Simulator sim;
  Channel<int> ch(sim, 4);
  std::vector<int> out;
  Fiber consumer = sim.Spawn(RecvAll(ch, out), "c");
  sim.RunUntil(SimTime::Zero() + 1_ms);
  EXPECT_TRUE(out.empty());
  sim.Spawn(SendAll(ch, 3, sim, 1_ms), "p");
  sim.RunUntilIdle();
  EXPECT_TRUE(consumer.done());
  EXPECT_EQ(out.size(), 3u);
}

TEST(ChannelTest, SendOnClosedFails) {
  Simulator sim;
  Channel<int> ch(sim, 4);
  ch.Close();
  const bool ok = sim.BlockOn([](Channel<int>& c) -> Task<bool> {
    co_return co_await c.Send(1);
  }(ch));
  EXPECT_FALSE(ok);
}

TEST(ChannelTest, CloseDrainsRemainingItems) {
  Simulator sim;
  Channel<int> ch(sim, 4);
  EXPECT_TRUE(ch.TrySend(1));
  EXPECT_TRUE(ch.TrySend(2));
  ch.Close();
  std::vector<int> out;
  sim.BlockOn(RecvAll(ch, out));
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(ChannelTest, TrySendRespectsCapacity) {
  Simulator sim;
  Channel<int> ch(sim, 1);
  EXPECT_TRUE(ch.TrySend(1));
  EXPECT_FALSE(ch.TrySend(2));
  EXPECT_EQ(ch.TryRecv(), std::optional<int>(1));
  EXPECT_EQ(ch.TryRecv(), std::nullopt);
}

TEST(ChannelTest, MultipleConsumersShareItems) {
  Simulator sim;
  Channel<int> ch(sim, 4);
  std::vector<int> out1;
  std::vector<int> out2;
  sim.Spawn(RecvAll(ch, out1), "c1");
  sim.Spawn(RecvAll(ch, out2), "c2");
  // A paced producer lets both consumers take turns; a bursty producer may
  // legitimately let one consumer drain everything (barging is allowed).
  sim.Spawn(SendAll(ch, 20, sim, 1_ms), "p");
  sim.RunUntilIdle();
  EXPECT_EQ(out1.size() + out2.size(), 20u);
  EXPECT_FALSE(out1.empty());
  EXPECT_FALSE(out2.empty());
}

TEST(ChannelTest, MoveOnlyPayload) {
  Simulator sim;
  Channel<std::unique_ptr<int>> ch(sim, 2);
  EXPECT_TRUE(ch.TrySend(std::make_unique<int>(5)));
  auto v = ch.TryRecv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

}  // namespace
}  // namespace quicksand
