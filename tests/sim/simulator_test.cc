#include "quicksand/sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

#include "quicksand/sim/task.h"

namespace quicksand {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), SimTime::Zero());
}

TEST(SimulatorTest, ScheduleAdvancesTime) {
  Simulator sim;
  SimTime fired = SimTime::Max();
  sim.Schedule(5_ms, [&] { fired = sim.Now(); });
  sim.RunUntilIdle();
  EXPECT_EQ(fired, SimTime::Zero() + 5_ms);
  EXPECT_EQ(sim.Now(), SimTime::Zero() + 5_ms);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(3_ms, [&] { order.push_back(3); });
  sim.Schedule(1_ms, [&] { order.push_back(1); });
  sim.Schedule(2_ms, [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(1_ms, [&] { order.push_back(1); });
  sim.Schedule(1_ms, [&] { order.push_back(2); });
  sim.Schedule(1_ms, [&] { order.push_back(3); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.Schedule(1_ms, [&] { fired = true; });
  sim.Cancel(id);
  sim.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelUnknownIdIsNoop) {
  Simulator sim;
  sim.Cancel(kInvalidEventId);
  sim.Cancel(99999);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  bool early = false;
  bool late = false;
  sim.Schedule(1_ms, [&] { early = true; });
  sim.Schedule(10_ms, [&] { late = true; });
  sim.RunUntil(SimTime::Zero() + 5_ms);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.Now(), SimTime::Zero() + 5_ms);
  sim.RunUntilIdle();
  EXPECT_TRUE(late);
}

TEST(SimulatorTest, NestedSchedulingFromEvent) {
  Simulator sim;
  SimTime second = SimTime::Max();
  sim.Schedule(1_ms, [&] { sim.Schedule(2_ms, [&] { second = sim.Now(); }); });
  sim.RunUntilIdle();
  EXPECT_EQ(second, SimTime::Zero() + 3_ms);
}

Task<> SleepTwice(Simulator& sim, std::vector<SimTime>& stamps) {
  co_await sim.Sleep(1_ms);
  stamps.push_back(sim.Now());
  co_await sim.Sleep(2_ms);
  stamps.push_back(sim.Now());
}

TEST(SimulatorTest, FiberSleepsAdvanceVirtualTime) {
  Simulator sim;
  std::vector<SimTime> stamps;
  Fiber f = sim.Spawn(SleepTwice(sim, stamps), "sleeper");
  sim.RunUntilIdle();
  EXPECT_TRUE(f.done());
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_EQ(stamps[0], SimTime::Zero() + 1_ms);
  EXPECT_EQ(stamps[1], SimTime::Zero() + 3_ms);
}

Task<int> Add(Simulator& sim, int a, int b) {
  co_await sim.Sleep(1_us);
  co_return a + b;
}

Task<int> Compose(Simulator& sim) {
  const int x = co_await Add(sim, 1, 2);
  const int y = co_await Add(sim, x, 10);
  co_return y;
}

TEST(SimulatorTest, BlockOnReturnsValueThroughNestedTasks) {
  Simulator sim;
  EXPECT_EQ(sim.BlockOn(Compose(sim)), 13);
  EXPECT_EQ(sim.Now(), SimTime::Zero() + 2_us);
}

Task<> Forever(Simulator& sim) {
  for (;;) {
    co_await sim.Sleep(1_ms);
  }
}

TEST(SimulatorTest, InfiniteFiberIsDestroyedAtTeardown) {
  // Must not leak (validated under ASan in CI-style runs) nor crash.
  Simulator sim;
  sim.Spawn(Forever(sim), "forever");
  sim.RunUntil(SimTime::Zero() + 10_ms);
  EXPECT_EQ(sim.live_fiber_count(), 1u);
}

Task<> Throws(Simulator& sim) {
  co_await sim.Sleep(1_us);
  throw std::runtime_error("boom");
}

Task<> JoinAndCatch(Simulator& sim, Fiber f, bool& caught) {
  try {
    co_await f.Join();
  } catch (const std::runtime_error& e) {
    caught = std::string(e.what()) == "boom";
  }
}

TEST(SimulatorTest, JoinRethrowsFiberException) {
  Simulator sim;
  Fiber f = sim.Spawn(Throws(sim), "thrower");
  bool caught = false;
  sim.Spawn(JoinAndCatch(sim, f, caught), "joiner");
  sim.RunUntilIdle();
  EXPECT_TRUE(caught);
  EXPECT_TRUE(f.failed());
}

TEST(SimulatorTest, UnjoinedFailedFiberIsCounted) {
  Simulator sim;
  sim.Spawn(Throws(sim), "thrower");
  sim.RunUntilIdle();
  EXPECT_EQ(sim.failed_fiber_count(), 1);
}

Task<> YieldOrder(Simulator& sim, std::vector<int>& order, int id) {
  order.push_back(id);
  co_await sim.Yield();
  order.push_back(id + 100);
}

TEST(SimulatorTest, YieldInterleavesFibers) {
  Simulator sim;
  std::vector<int> order;
  sim.Spawn(YieldOrder(sim, order, 1), "a");
  sim.Spawn(YieldOrder(sim, order, 2), "b");
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 101, 102}));
}

Task<> JoinWaiter(Simulator& sim, Fiber target, SimTime& joined_at) {
  co_await target.Join();
  joined_at = sim.Now();
}

TEST(SimulatorTest, JoinWaitsForCompletion) {
  Simulator sim;
  std::vector<SimTime> stamps;
  Fiber worker = sim.Spawn(SleepTwice(sim, stamps), "w");
  SimTime joined_at = SimTime::Zero();
  sim.Spawn(JoinWaiter(sim, worker, joined_at), "j");
  sim.RunUntilIdle();
  EXPECT_EQ(joined_at, SimTime::Zero() + 3_ms);
}

TEST(SimulatorTest, JoinAfterCompletionReturnsImmediately) {
  Simulator sim;
  std::vector<SimTime> stamps;
  Fiber worker = sim.Spawn(SleepTwice(sim, stamps), "w");
  sim.RunUntilIdle();
  ASSERT_TRUE(worker.done());
  SimTime joined_at = SimTime::Max();
  sim.Spawn(JoinWaiter(sim, worker, joined_at), "j");
  sim.RunUntilIdle();
  EXPECT_EQ(joined_at, SimTime::Zero() + 3_ms);
}

TEST(SimulatorTest, JoinAllWaitsForEveryFiber) {
  Simulator sim;
  std::vector<SimTime> s1;
  std::vector<SimTime> s2;
  std::vector<Fiber> fibers;
  fibers.push_back(sim.Spawn(SleepTwice(sim, s1), "w1"));
  fibers.push_back(sim.Spawn(SleepTwice(sim, s2), "w2"));
  sim.BlockOn(JoinAll(fibers));
  EXPECT_EQ(s1.size(), 2u);
  EXPECT_EQ(s2.size(), 2u);
}

TEST(SimulatorDeathTest, BlockOnDeadlockAborts) {
  // A task that waits on an event nobody sets deadlocks the queue.
  EXPECT_DEATH(
      {
        Simulator sim;
        struct Never {
          static Task<> Wait() {
            co_await std::suspend_always{};  // parked forever
          }
        };
        sim.BlockOn(Never::Wait());
      },
      "deadlock");
}

}  // namespace
}  // namespace quicksand
