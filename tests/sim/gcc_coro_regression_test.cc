// Regression pin for a GCC 12 coroutine miscompilation (see the workaround
// note in quicksand/sim/task.h).
//
// `co_await F(heavy_temporary)` — where the temporary is non-trivially
// destructible (a std::string, or a lambda capturing one) — gets the
// temporary double-destroyed by GCC 12, corrupting the heap. The codebase
// convention is to materialize such tasks into named locals first; this test
// exercises the named-local pattern through deep awaits with string-capturing
// lambdas and would crash (under ASan: bad-free) if the convention regressed
// in the wrapped APIs it uses.

#include <string>

#include <gtest/gtest.h>

#include "quicksand/sim/simulator.h"
#include "quicksand/sim/task.h"

namespace quicksand {
namespace {

struct Sink {
  std::string last;
  int64_t calls = 0;
};

template <typename Fn>
Task<int> Apply(Sink& sink, Fn fn) {
  const int result = co_await fn(sink);
  co_return result;
}

Task<int> StoreString(Simulator& sim, Sink& sink, std::string value) {
  // Named-task pattern: the string-capturing lambda temporary dies once,
  // here, before the await.
  auto task = Apply(sink, [value = std::move(value)](Sink& s) mutable -> Task<int> {
    s.last = std::move(value);
    ++s.calls;
    co_return static_cast<int>(s.last.size());
  });
  const int n = co_await std::move(task);
  co_await sim.Sleep(1_us);  // force a real suspension too
  co_return n;
}

Task<int> Chain(Simulator& sim, Sink& sink, int depth, std::string payload) {
  if (depth == 0) {
    auto task = StoreString(sim, sink, std::move(payload));
    co_return co_await std::move(task);
  }
  auto task = Chain(sim, sink, depth - 1, std::move(payload));
  co_return co_await std::move(task);
}

TEST(GccCoroRegressionTest, HeavyTemporariesSurviveDeepAwaits) {
  Simulator sim;
  Sink sink;
  const std::string payload(128, 'q');  // defeats SSO
  const int n = sim.BlockOn(Chain(sim, sink, 8, payload));
  EXPECT_EQ(n, 128);
  EXPECT_EQ(sink.last, payload);
  EXPECT_EQ(sink.calls, 1);
}

TEST(GccCoroRegressionTest, RepeatedHeavyCallsDoNotCorruptHeap) {
  Simulator sim;
  Sink sink;
  for (int i = 0; i < 100; ++i) {
    const std::string payload(64 + i, 'x');
    const int n = sim.BlockOn(StoreString(sim, sink, payload));
    EXPECT_EQ(n, 64 + i);
  }
  EXPECT_EQ(sink.calls, 100);
}

}  // namespace
}  // namespace quicksand
