// Property test for the event core: drive the slab + ladder-queue scheduler
// with a seeded random mix of schedule / cancel / reschedule / chained
// schedules, and assert that the firing order matches a reference model — a
// std::multimap ordered by (time, seq), the specification the old single
// priority queue implemented directly. Also cross-checks the live-event
// counter against the model's size after every operation.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "quicksand/sim/simulator.h"

namespace quicksand {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class ModelDriver {
 public:
  explicit ModelDriver(uint64_t seed) : rng_(seed) {}

  // (time_ns, seq): the total order every event fires in.
  using Key = std::pair<int64_t, uint64_t>;

  void ScheduleOne(bool allow_chain) {
    // Mix of delays: the now lane (zero), the rung window (< 64us), and the
    // far heap — plus exact-boundary values to probe the rung edge.
    const uint64_t r = SplitMix64(rng_);
    Duration delay = Duration::Zero();
    switch (r % 8) {
      case 0:
      case 1:
      case 2:
        delay = Duration::Zero();
        break;
      case 3:
      case 4:
        delay = Duration::Nanos(static_cast<int64_t>(r / 8 % 64000));
        break;
      case 5:
        delay = Duration::Nanos(64000);  // exactly one rung width out
        break;
      default:
        delay = Duration::Nanos(static_cast<int64_t>(r / 8 % 2000000));
        break;
    }
    const uint64_t token = next_token_++;
    const Key key{(sim_.Now() + delay).nanos(), next_seq_++};
    const bool chain = allow_chain && (r >> 60) == 0;
    const EventId id = sim_.Schedule(delay, [this, token, chain] {
      OnFire(token);
      if (chain) {
        ScheduleOne(/*allow_chain=*/false);  // schedule-during-drain coverage
      }
    });
    ASSERT_NE(id, kInvalidEventId);
    auto it = model_.emplace(key, token);
    by_id_.emplace(id, it);
    token_to_id_.emplace(token, id);
    live_.push_back(id);
  }

  void CancelRandom() {
    if (live_.empty()) {
      return;
    }
    const size_t pick = SplitMix64(rng_) % live_.size();
    const EventId id = live_[pick];
    live_[pick] = live_.back();
    live_.pop_back();
    sim_.Cancel(id);  // no-op if the event already fired — the model agrees:
    auto it = by_id_.find(id);
    if (it != by_id_.end()) {
      model_.erase(it->second);
      by_id_.erase(it);
    }
  }

  void StepSome(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      if (!sim_.Step()) {
        break;
      }
    }
  }

  void CheckCounts() const {
    ASSERT_EQ(sim_.pending_event_count(), model_.size());
  }

  void DrainAndVerify() {
    sim_.RunUntilIdle();
    EXPECT_TRUE(model_.empty());
    EXPECT_EQ(sim_.pending_event_count(), 0u);
    EXPECT_EQ(mismatches_, 0);
  }

  uint64_t Rand() { return SplitMix64(rng_); }
  size_t scheduled() const { return next_token_; }

 private:
  void OnFire(uint64_t token) {
    ASSERT_FALSE(model_.empty()) << "fired token " << token
                                 << " but the model expects nothing";
    const auto front = model_.begin();
    if (front->second != token) {
      ++mismatches_;
      ADD_FAILURE() << "fired token " << token << " but the model expects "
                    << front->second << " at t=" << front->first.first
                    << " seq=" << front->first.second;
    }
    EXPECT_EQ(front->first.first, sim_.Now().nanos());
    by_id_.erase(token_to_id_.at(token));
    token_to_id_.erase(token);
    model_.erase(front);
  }

  Simulator sim_;
  uint64_t rng_;
  uint64_t next_seq_ = 1;   // mirrors the simulator's insertion sequence
  uint64_t next_token_ = 0;
  std::multimap<Key, uint64_t> model_;
  std::unordered_map<EventId, std::multimap<Key, uint64_t>::iterator> by_id_;
  std::unordered_map<uint64_t, EventId> token_to_id_;
  std::vector<EventId> live_;  // may contain stale ids; Cancel tolerates them
  int mismatches_ = 0;
};

TEST(EventQueuePropertyTest, RandomScheduleCancelRescheduleMatchesModel) {
  constexpr size_t kTargetEvents = 100000;
  ModelDriver driver(/*seed=*/0x9d5c0ffeeULL);
  while (driver.scheduled() < kTargetEvents) {
    const uint64_t op = driver.Rand() % 10;
    if (op < 5) {
      driver.ScheduleOne(/*allow_chain=*/true);
    } else if (op < 7) {
      driver.CancelRandom();
    } else if (op == 7) {
      // Reschedule: cancel one and immediately schedule a fresh replacement.
      driver.CancelRandom();
      driver.ScheduleOne(/*allow_chain=*/false);
    } else {
      driver.StepSome(driver.Rand() % 16);
    }
    driver.CheckCounts();
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  driver.DrainAndVerify();
}

TEST(EventQueuePropertyTest, SecondSeedMatchesModel) {
  ModelDriver driver(/*seed=*/42);
  while (driver.scheduled() < 20000) {
    const uint64_t op = driver.Rand() % 8;
    if (op < 4) {
      driver.ScheduleOne(/*allow_chain=*/true);
    } else if (op < 6) {
      driver.CancelRandom();
    } else {
      driver.StepSome(driver.Rand() % 32);
    }
    driver.CheckCounts();
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  driver.DrainAndVerify();
}

}  // namespace
}  // namespace quicksand
