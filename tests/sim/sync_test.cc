#include "quicksand/sim/sync.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "quicksand/sim/simulator.h"

namespace quicksand {
namespace {

// Note: coroutines must take `name` by value — a reference parameter would
// dangle once the Spawn call's temporaries die.
Task<> CriticalSection(Simulator& sim, Mutex& mu, std::vector<std::string>& log,
                       std::string name) {
  co_await mu.Lock();
  log.push_back(name + ":enter");
  co_await sim.Sleep(1_ms);
  log.push_back(name + ":exit");
  mu.Unlock();
}

TEST(MutexTest, MutualExclusionAcrossSleeps) {
  Simulator sim;
  Mutex mu(sim);
  std::vector<std::string> log;
  sim.Spawn(CriticalSection(sim, mu, log, "a"), "a");
  sim.Spawn(CriticalSection(sim, mu, log, "b"), "b");
  sim.RunUntilIdle();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "a:enter");
  EXPECT_EQ(log[1], "a:exit");
  EXPECT_EQ(log[2], "b:enter");
  EXPECT_EQ(log[3], "b:exit");
}

TEST(MutexTest, TryLock) {
  Simulator sim;
  Mutex mu(sim);
  EXPECT_TRUE(mu.TryLock());
  EXPECT_TRUE(mu.locked());
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  EXPECT_FALSE(mu.locked());
}

Task<> UseGuard(Simulator& sim, Mutex& mu, bool& ran) {
  {
    MutexGuard guard = co_await mu.Acquire();
    EXPECT_TRUE(mu.locked());
    co_await sim.Sleep(1_us);
  }
  EXPECT_FALSE(mu.locked());
  ran = true;
}

TEST(MutexTest, GuardUnlocksOnScopeExit) {
  Simulator sim;
  Mutex mu(sim);
  bool ran = false;
  sim.BlockOn(UseGuard(sim, mu, ran));
  EXPECT_TRUE(ran);
}

Task<> Producer(Simulator& sim, Mutex& mu, CondVar& cv, int& value) {
  co_await sim.Sleep(5_ms);
  co_await mu.Lock();
  value = 42;
  cv.NotifyAll();
  mu.Unlock();
}

Task<> Consumer(Simulator& sim, Mutex& mu, CondVar& cv, int& value, SimTime& woke) {
  co_await mu.Lock();
  while (value == 0) {
    co_await cv.Wait(mu);
  }
  woke = sim.Now();
  mu.Unlock();
}

TEST(CondVarTest, WaitBlocksUntilNotify) {
  Simulator sim;
  Mutex mu(sim);
  CondVar cv(sim);
  int value = 0;
  SimTime woke = SimTime::Zero();
  sim.Spawn(Consumer(sim, mu, cv, value, woke), "c");
  sim.Spawn(Producer(sim, mu, cv, value), "p");
  sim.RunUntilIdle();
  EXPECT_EQ(value, 42);
  EXPECT_EQ(woke, SimTime::Zero() + 5_ms);
}

Task<> AcquireN(Semaphore& sem, int64_t n, bool& got) {
  co_await sem.Acquire(n);
  got = true;
}

TEST(SemaphoreTest, BlocksWhenInsufficient) {
  Simulator sim;
  Semaphore sem(sim, 2);
  bool got = false;
  sim.Spawn(AcquireN(sem, 3, got), "a");
  sim.RunUntilIdle();
  EXPECT_FALSE(got);
  sem.Release(1);
  sim.RunUntilIdle();
  EXPECT_TRUE(got);
  EXPECT_EQ(sem.count(), 0);
}

TEST(SemaphoreTest, TryAcquire) {
  Simulator sim;
  Semaphore sem(sim, 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

Task<> WaitEvent(SimEvent& ev, Simulator& sim, SimTime& when) {
  co_await ev.Wait();
  when = sim.Now();
}

TEST(SimEventTest, WaitersReleaseOnSet) {
  Simulator sim;
  SimEvent ev(sim);
  SimTime w1 = SimTime::Zero();
  SimTime w2 = SimTime::Zero();
  sim.Spawn(WaitEvent(ev, sim, w1), "w1");
  sim.Spawn(WaitEvent(ev, sim, w2), "w2");
  sim.Schedule(7_ms, [&] { ev.Set(); });
  sim.RunUntilIdle();
  EXPECT_EQ(w1, SimTime::Zero() + 7_ms);
  EXPECT_EQ(w2, SimTime::Zero() + 7_ms);
}

TEST(SimEventTest, WaitAfterSetReturnsImmediately) {
  Simulator sim;
  SimEvent ev(sim);
  ev.Set();
  SimTime when = SimTime::Max();
  sim.Spawn(WaitEvent(ev, sim, when), "w");
  sim.RunUntilIdle();
  EXPECT_EQ(when, SimTime::Zero());
}

TEST(SimEventTest, ResetRearmsEvent) {
  Simulator sim;
  SimEvent ev(sim);
  ev.Set();
  ev.Reset();
  EXPECT_FALSE(ev.is_set());
  SimTime when = SimTime::Max();
  sim.Spawn(WaitEvent(ev, sim, when), "w");
  sim.RunUntil(SimTime::Zero() + 1_ms);
  EXPECT_EQ(when, SimTime::Max());  // still blocked
  ev.Set();
  sim.RunUntilIdle();
  EXPECT_EQ(when, SimTime::Zero() + 1_ms);
}

Task<> WorkerDone(Simulator& sim, WaitGroup& wg, Duration d) {
  co_await sim.Sleep(d);
  wg.Done();
}

Task<> WaitGroupWaiter(WaitGroup& wg, Simulator& sim, SimTime& when) {
  co_await wg.Wait();
  when = sim.Now();
}

TEST(WaitGroupTest, WaitsForAllWorkers) {
  Simulator sim;
  WaitGroup wg(sim);
  wg.Add(3);
  sim.Spawn(WorkerDone(sim, wg, 1_ms), "w1");
  sim.Spawn(WorkerDone(sim, wg, 5_ms), "w2");
  sim.Spawn(WorkerDone(sim, wg, 3_ms), "w3");
  SimTime when = SimTime::Zero();
  sim.Spawn(WaitGroupWaiter(wg, sim, when), "waiter");
  sim.RunUntilIdle();
  EXPECT_EQ(when, SimTime::Zero() + 5_ms);
  EXPECT_EQ(wg.count(), 0);
}

TEST(WaitGroupTest, WaitOnZeroReturnsImmediately) {
  Simulator sim;
  WaitGroup wg(sim);
  SimTime when = SimTime::Max();
  sim.Spawn(WaitGroupWaiter(wg, sim, when), "waiter");
  sim.RunUntilIdle();
  EXPECT_EQ(when, SimTime::Zero());
}

}  // namespace
}  // namespace quicksand
