// Edge-case coverage for the event loop beyond the happy paths of
// simulator_test.cc.

#include <gtest/gtest.h>

#include "quicksand/sim/simulator.h"

namespace quicksand {
namespace {

TEST(SimulatorEdgeTest, CancelAfterFireIsNoop) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.Schedule(1_ms, [&] { fired = true; });
  sim.RunUntilIdle();
  EXPECT_TRUE(fired);
  sim.Cancel(id);  // already fired: must not crash or unfire
  sim.RunUntilIdle();
}

TEST(SimulatorEdgeTest, CancelFromInsideAnotherEvent) {
  Simulator sim;
  bool fired = false;
  const EventId victim = sim.Schedule(2_ms, [&] { fired = true; });
  sim.Schedule(1_ms, [&] { sim.Cancel(victim); });
  sim.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(SimulatorEdgeTest, PendingEventCountExcludesCancelled) {
  Simulator sim;
  const EventId a = sim.Schedule(1_ms, [] {});
  sim.Schedule(2_ms, [] {});
  EXPECT_EQ(sim.pending_event_count(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_event_count(), 1u);
  sim.RunUntilIdle();
  EXPECT_EQ(sim.pending_event_count(), 0u);
}

Task<> SleepUntilPast(Simulator& sim, SimTime target, SimTime& resumed_at) {
  co_await sim.SleepUntil(target);
  resumed_at = sim.Now();
}

TEST(SimulatorEdgeTest, SleepUntilThePastResumesImmediately) {
  Simulator sim;
  sim.RunUntil(SimTime::Zero() + 10_ms);
  SimTime resumed;
  sim.Spawn(SleepUntilPast(sim, SimTime::Zero() + 5_ms, resumed), "p");
  sim.RunUntilIdle();
  EXPECT_EQ(resumed, SimTime::Zero() + 10_ms);  // no time travel
}

Task<> SpawnChildren(Simulator& sim, int depth, int64_t& count) {
  ++count;
  if (depth > 0) {
    Fiber left = sim.Spawn(SpawnChildren(sim, depth - 1, count), "l");
    Fiber right = sim.Spawn(SpawnChildren(sim, depth - 1, count), "r");
    co_await left.Join();
    co_await right.Join();
  }
}

TEST(SimulatorEdgeTest, RecursiveSpawnTree) {
  Simulator sim;
  int64_t count = 0;
  sim.BlockOn(SpawnChildren(sim, 6, count));
  EXPECT_EQ(count, (1 << 7) - 1);  // full binary tree of fibers
}

Task<> JoinSelfIndirect(Simulator& sim, Fiber* self, bool& done) {
  co_await sim.Sleep(1_ms);
  // Joining an already-finished fiber from elsewhere is covered; here we
  // only assert a fiber can query its own handle safely.
  EXPECT_TRUE(self->valid());
  EXPECT_FALSE(self->done());
  done = true;
}

TEST(SimulatorEdgeTest, FiberSeesItsOwnHandle) {
  Simulator sim;
  bool done = false;
  Fiber f;
  f = sim.Spawn(JoinSelfIndirect(sim, &f, done), "self");
  sim.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_TRUE(f.done());
}

TEST(SimulatorEdgeTest, ManySameTimeEventsKeepFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 1000; ++i) {
    sim.Schedule(1_ms, [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorEdgeTest, RunForZeroAdvancesNothing) {
  Simulator sim;
  bool fired = false;
  sim.Schedule(1_ns, [&] { fired = true; });
  sim.RunFor(Duration::Zero());
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.Now(), SimTime::Zero());
}

TEST(SimulatorEdgeTest, PendingEventCountSurvivesCancelFireRecancel) {
  Simulator sim;
  const EventId a = sim.Schedule(1_ms, [] {});
  const EventId b = sim.Schedule(2_ms, [] {});
  sim.Cancel(a);
  sim.Cancel(a);  // double cancel: the old queue-minus-cancelled-set math underflowed here
  EXPECT_EQ(sim.pending_event_count(), 1u);
  sim.RunUntilIdle();  // fires b
  EXPECT_EQ(sim.pending_event_count(), 0u);
  sim.Cancel(b);  // cancel after fire
  sim.Cancel(a);  // and cancel long-dead again
  EXPECT_EQ(sim.pending_event_count(), 0u);
  const EventId c = sim.Schedule(1_ms, [] {});
  EXPECT_EQ(sim.pending_event_count(), 1u);
  sim.Cancel(c);
  sim.Cancel(c);
  EXPECT_EQ(sim.pending_event_count(), 0u);
  sim.RunUntilIdle();
  EXPECT_EQ(sim.pending_event_count(), 0u);
}

TEST(SimulatorEdgeTest, NegativeDelayClampsIntoNowLaneFifo) {
  // Negative delays (absolute-time arithmetic on past deadlines) mean "as
  // soon as possible": they clamp to zero and take their FIFO slot among the
  // other now-lane events instead of time-travelling or jumping the queue.
  Simulator sim;
  sim.RunUntil(SimTime::Zero() + 10_ms);
  std::vector<int> order;
  sim.Schedule(Duration::Zero(), [&] { order.push_back(0); });
  sim.Schedule(-5_ms, [&] { order.push_back(1); });
  sim.Schedule(Duration::Zero(), [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(sim.Now(), SimTime::Zero() + 10_ms);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

Task<> InlinePastSleep(Simulator& sim, bool& ran) {
  co_await sim.SleepUntil(SimTime::Zero() + 5_ms);  // 5ms behind Now()
  ran = true;
}

TEST(SimulatorEdgeTest, SleepUntilPastResumesInlineWithoutAnEvent) {
  // SleepUntil on a past deadline resumes the caller inline (await_ready),
  // not through the queue: digest-gated paths (rpc retransmit, disk service
  // loops) rely on not being reordered behind unrelated ready work.
  Simulator sim;
  sim.RunUntil(SimTime::Zero() + 10_ms);
  const int64_t before = sim.fired_event_count();
  bool ran = false;
  sim.Spawn(InlinePastSleep(sim, ran), "p");
  sim.RunUntilIdle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.fired_event_count() - before, 1);  // only the spawn wakeup fired
}

TEST(SimulatorEdgeDeathTest, SchedulingInThePastAborts) {
  Simulator sim;
  sim.RunUntil(SimTime::Zero() + 10_ms);
  EXPECT_DEATH(sim.ScheduleAt(SimTime::Zero() + 5_ms, [] {}), "in the past");
}

}  // namespace
}  // namespace quicksand
