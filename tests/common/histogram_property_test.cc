// Property sweep: LatencyHistogram percentiles stay within the bucket
// resolution bound (~+-7%) for a variety of latency distributions.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "quicksand/common/random.h"
#include "quicksand/common/stats.h"

namespace quicksand {
namespace {

enum class Shape { kUniform, kExponential, kBimodal, kHeavyTail };

struct Param {
  Shape shape;
  uint64_t seed;
};

class HistogramPropertyTest : public ::testing::TestWithParam<Param> {};

int64_t DrawNanos(Rng& rng, Shape shape) {
  switch (shape) {
    case Shape::kUniform:
      return rng.NextInRange(1000, 10'000'000);
    case Shape::kExponential:
      return static_cast<int64_t>(rng.NextExponential(50'000.0)) + 100;
    case Shape::kBimodal:
      return rng.NextBool(0.8) ? rng.NextInRange(5'000, 15'000)
                               : rng.NextInRange(1'000'000, 2'000'000);
    case Shape::kHeavyTail: {
      // Pareto-ish: x = scale / u^(1/alpha)
      const double u = std::max(1e-9, rng.NextDouble());
      return static_cast<int64_t>(1000.0 / std::pow(u, 1.0 / 1.5));
    }
  }
  return 1;
}

TEST_P(HistogramPropertyTest, PercentilesWithinBucketResolution) {
  const Param param = GetParam();
  Rng rng(param.seed);
  LatencyHistogram hist;
  std::vector<int64_t> samples;
  constexpr int kN = 20000;
  samples.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    const int64_t ns = DrawNanos(rng, param.shape);
    samples.push_back(ns);
    hist.Add(Duration::Nanos(ns));
  }
  std::sort(samples.begin(), samples.end());

  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    const auto rank = static_cast<size_t>(p / 100.0 * (kN - 1));
    const double approx = static_cast<double>(hist.Percentile(p).nanos());
    // Two error sources: bucket resolution (~7% with 16 sub-buckets) and
    // rank-definition skew, which matters in sparse tails — so bound against
    // a +-0.2%-rank neighborhood instead of the single exact sample.
    const size_t slack = kN / 500;
    const double lo = static_cast<double>(
        samples[rank > slack ? rank - slack : 0]);
    const double hi = static_cast<double>(
        samples[std::min<size_t>(kN - 1, rank + slack)]);
    EXPECT_GE(approx, lo * 0.92) << "p" << p;
    EXPECT_LE(approx, hi * 1.08) << "p" << p;
  }
  EXPECT_EQ(hist.Min().nanos(), samples.front());
  EXPECT_EQ(hist.Max().nanos(), samples.back());
  // Mean is exact (kept as a running sum).
  double sum = 0;
  for (int64_t s : samples) {
    sum += static_cast<double>(s);
  }
  EXPECT_NEAR(static_cast<double>(hist.Mean().nanos()), sum / kN, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HistogramPropertyTest,
    ::testing::Values(Param{Shape::kUniform, 1}, Param{Shape::kUniform, 2},
                      Param{Shape::kExponential, 3}, Param{Shape::kExponential, 4},
                      Param{Shape::kBimodal, 5}, Param{Shape::kBimodal, 6},
                      Param{Shape::kHeavyTail, 7}, Param{Shape::kHeavyTail, 8}));

}  // namespace
}  // namespace quicksand
