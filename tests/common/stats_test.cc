#include "quicksand/common/stats.h"

#include <gtest/gtest.h>

namespace quicksand {
namespace {

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, ResetClears) {
  RunningStat s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
}

TEST(LatencyHistogramTest, PercentilesApproximateInput) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Add(Duration::Micros(i));
  }
  EXPECT_EQ(h.count(), 1000);
  // Buckets are ~4% wide, allow 8% tolerance.
  EXPECT_NEAR(h.Percentile(50).micros(), 500, 40);
  EXPECT_NEAR(h.Percentile(90).micros(), 900, 75);
  EXPECT_NEAR(h.Percentile(99).micros(), 990, 80);
  EXPECT_EQ(h.Min(), Duration::Micros(1));
  EXPECT_EQ(h.Max(), Duration::Micros(1000));
  EXPECT_NEAR(h.Mean().micros(), 500, 2);
}

TEST(LatencyHistogramTest, MergeCombinesCounts) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Add(1_ms);
  b.Add(3_ms);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.Max(), 3_ms);
  EXPECT_EQ(a.Min(), 1_ms);
}

TEST(LatencyHistogramTest, EmptyPercentileIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(99), Duration::Zero());
}

TEST(LatencyHistogramTest, WideRange) {
  LatencyHistogram h;
  h.Add(1_ns);
  h.Add(10_s);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.Min(), 1_ns);
  EXPECT_EQ(h.Max(), 10_s);
  EXPECT_LE(h.Percentile(0).nanos(), 2);
}

TEST(EwmaTest, ConvergesTowardInput) {
  Ewma e(0.5);
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);  // first sample initializes
  e.Add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  for (int i = 0; i < 50; ++i) {
    e.Add(20.0);
  }
  EXPECT_NEAR(e.value(), 20.0, 1e-6);
}

TEST(TimeSeriesTest, RecordAndWindowMean) {
  TimeSeries ts("goodput");
  ts.Record(SimTime::FromNanos(0), 1.0);
  ts.Record(SimTime::FromNanos(100), 2.0);
  ts.Record(SimTime::FromNanos(200), 3.0);
  EXPECT_EQ(ts.points().size(), 3u);
  EXPECT_DOUBLE_EQ(ts.MeanOver(SimTime::FromNanos(0), SimTime::FromNanos(150)), 1.5);
  EXPECT_DOUBLE_EQ(ts.MeanOver(SimTime::FromNanos(0), SimTime::FromNanos(300)), 2.0);
}

TEST(WindowedHistogramTest, CountsOnlySamplesInsideTheWindow) {
  WindowedHistogram h(Duration::Millis(100));
  const SimTime t0 = SimTime::Zero();
  h.Add(t0, Duration::Micros(10));
  EXPECT_EQ(h.Count(t0), 1);
  // Still visible anywhere inside the window...
  EXPECT_EQ(h.Count(t0 + Duration::Millis(99)), 1);
  // ...gone once the window has slid past it.
  EXPECT_EQ(h.Count(t0 + Duration::Millis(250)), 0);
}

TEST(WindowedHistogramTest, OldErasExpireAsTheWindowSlides) {
  WindowedHistogram h(Duration::Millis(80), /*slices=*/8);
  // Era 1: slow requests. Era 2 (a window later): fast requests.
  for (int i = 0; i < 100; ++i) {
    h.Add(SimTime::FromNanos(i * 1000), Duration::Millis(50));
  }
  const SimTime later = SimTime::Zero() + Duration::Millis(200);
  for (int i = 0; i < 100; ++i) {
    h.Add(later + Duration::Micros(i), Duration::Micros(100));
  }
  // Queried at era 2, the p99 reflects only era 2: the 50ms era has aged
  // out, so the quantile is near 100us, not 50ms.
  const Duration p99 = h.Percentile(later + Duration::Millis(1), 99);
  EXPECT_LT(p99, Duration::Millis(1));
  EXPECT_EQ(h.Count(later + Duration::Millis(1)), 100);
}

TEST(WindowedHistogramTest, PercentileApproximatesInWindowSamples) {
  WindowedHistogram h(Duration::Seconds(1));
  SimTime t = SimTime::Zero();
  for (int i = 1; i <= 1000; ++i) {
    h.Add(t, Duration::Micros(i));
    t = t + Duration::Micros(500);  // all within the 1s window at the end
  }
  EXPECT_NEAR(h.Percentile(t, 50).micros(), 500, 40);
  EXPECT_NEAR(h.Percentile(t, 99).micros(), 990, 80);
  EXPECT_EQ(h.Merged(t).count(), h.Count(t));
}

TEST(WindowedHistogramTest, EmptyWindowIsZero) {
  WindowedHistogram h(Duration::Millis(10));
  EXPECT_EQ(h.Count(SimTime::Zero()), 0);
  EXPECT_EQ(h.Percentile(SimTime::Zero(), 99), Duration::Zero());
  EXPECT_EQ(h.window(), Duration::Millis(10));
}

TEST(WindowedHistogramTest, ReAddAfterLongGapDropsStaleSlices) {
  // A slice index that wrapped all the way around the ring must not
  // resurrect samples from a previous lap.
  WindowedHistogram h(Duration::Millis(8), /*slices=*/4);
  h.Add(SimTime::Zero(), Duration::Micros(1));
  const SimTime far = SimTime::Zero() + Duration::Seconds(3);
  h.Add(far, Duration::Micros(2));
  EXPECT_EQ(h.Count(far), 1);
  EXPECT_EQ(h.Merged(far).Max(), Duration::Micros(2));
}

TEST(TimeSeriesTest, CsvHasHeaderAndRows) {
  TimeSeries ts("x");
  ts.Record(SimTime::Zero() + 1_s, 2.5);
  const std::string csv = ts.ToCsv();
  EXPECT_NE(csv.find("time_s,x"), std::string::npos);
  EXPECT_NE(csv.find("1.000000,2.500000"), std::string::npos);
}

}  // namespace
}  // namespace quicksand
