#include "quicksand/common/bytes.h"

#include <gtest/gtest.h>

namespace quicksand {
namespace {

TEST(BytesTest, Literals) {
  EXPECT_EQ(1_KiB, 1024);
  EXPECT_EQ(1_MiB, 1024 * 1024);
  EXPECT_EQ(2_GiB, 2147483648LL);
}

TEST(BytesTest, FormatPicksUnit) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(10 * 1024 * 1024), "10.0 MiB");
  EXPECT_EQ(FormatBytes(3 * 1024LL * 1024 * 1024), "3.00 GiB");
}

TEST(BytesTest, FormatNegative) { EXPECT_EQ(FormatBytes(-2048), "-2.0 KiB"); }

}  // namespace
}  // namespace quicksand
