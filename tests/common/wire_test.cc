#include "quicksand/common/wire.h"

#include <gtest/gtest.h>

namespace quicksand {
namespace {

struct Blob {
  int64_t payload;
  int64_t WireBytes() const { return payload; }
};

TEST(WireTest, TrivialTypesUseSizeof) {
  EXPECT_EQ(WireSizeOf(int32_t{5}), 4);
  EXPECT_EQ(WireSizeOf(double{1.0}), 8);
  struct Pod {
    int64_t a;
    int32_t b;
  };
  EXPECT_EQ(WireSizeOf(Pod{}), static_cast<int64_t>(sizeof(Pod)));
}

TEST(WireTest, CustomWireBytesWins) {
  EXPECT_EQ(WireSizeOf(Blob{4096}), 4096);
}

TEST(WireTest, StringIncludesLengthPrefix) {
  EXPECT_EQ(WireSizeOf(std::string("hello")), 13);
}

TEST(WireTest, VectorOfTrivialIsBulk) {
  std::vector<int32_t> v(10, 1);
  EXPECT_EQ(WireSizeOf(v), 8 + 40);
}

TEST(WireTest, VectorOfCustomSums) {
  std::vector<Blob> v = {{100}, {200}};
  EXPECT_EQ(WireSizeOf(v), 8 + 300);
}

TEST(WireTest, PairAndMap) {
  EXPECT_EQ(WireSizeOf(std::make_pair(int32_t{1}, int64_t{2})), 12);
  std::map<int32_t, int32_t> m = {{1, 2}, {3, 4}};
  EXPECT_EQ(WireSizeOf(m), 8 + 16);
}

TEST(WireTest, ParameterPackSums) {
  EXPECT_EQ(WireSizeOfAll(int32_t{1}, int64_t{2}, std::string("ab")), 4 + 8 + 10);
  EXPECT_EQ(WireSizeOfAll(), 0);
}

TEST(WireTest, OptionalAddsPresenceByte) {
  EXPECT_EQ(WireSizeOf(std::optional<int64_t>{}), 1);
  EXPECT_EQ(WireSizeOf(std::optional<int64_t>{5}), 9);
  EXPECT_EQ(WireSizeOf(std::optional<std::string>{std::string("abc")}), 1 + 11);
}

TEST(WireTest, StatusCarriesMessage) {
  EXPECT_EQ(WireSizeOf(Status::Ok()), 4);
  EXPECT_EQ(WireSizeOf(Status::NotFound("gone")), 4 + 4);
}

TEST(WireTest, ResultIsTaggedUnion) {
  EXPECT_EQ(WireSizeOf(Result<int64_t>(7)), 1 + 8);
  EXPECT_EQ(WireSizeOf(Result<int64_t>(Status::NotFound("x"))), 1 + 4 + 1);
}

}  // namespace
}  // namespace quicksand
