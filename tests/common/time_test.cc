#include "quicksand/common/time.h"

#include <gtest/gtest.h>

namespace quicksand {
namespace {

TEST(DurationTest, FactoryUnits) {
  EXPECT_EQ(Duration::Nanos(5).nanos(), 5);
  EXPECT_EQ(Duration::Micros(5).nanos(), 5000);
  EXPECT_EQ(Duration::Millis(5).nanos(), 5000000);
  EXPECT_EQ(Duration::Seconds(5).nanos(), 5000000000LL);
  EXPECT_EQ(Duration::SecondsF(0.5).millis(), 500);
}

TEST(DurationTest, Literals) {
  EXPECT_EQ((10_us).nanos(), 10000);
  EXPECT_EQ((10_ms).micros(), 10000);
  EXPECT_EQ((2_s).millis(), 2000);
  EXPECT_EQ((7_ns).nanos(), 7);
}

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ((3_ms + 2_ms).millis(), 5);
  EXPECT_EQ((3_ms - 5_ms).millis(), -2);
  EXPECT_EQ((3_ms * 4).millis(), 12);
  EXPECT_EQ((10_ms / 4).micros(), 2500);
  EXPECT_DOUBLE_EQ(10_ms / 4_ms, 2.5);
  EXPECT_EQ((2_ms * 1.5).micros(), 3000);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(1_us, 1_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_EQ(1000_us, 1_ms);
  EXPECT_LE(Duration::Zero(), 0_ns);
}

TEST(DurationTest, CompoundAssignment) {
  Duration d = 5_ms;
  d += 5_ms;
  EXPECT_EQ(d, 10_ms);
  d -= 3_ms;
  EXPECT_EQ(d, 7_ms);
}

TEST(DurationTest, ToStringPicksUnit) {
  EXPECT_EQ((500_ns).ToString(), "500ns");
  EXPECT_EQ((1500_ns).ToString(), "1.50us");
  EXPECT_EQ((2500_us).ToString(), "2.50ms");
  EXPECT_EQ((1500_ms).ToString(), "1.500s");
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime t0 = SimTime::Zero();
  const SimTime t1 = t0 + 5_ms;
  EXPECT_EQ(t1.nanos(), 5000000);
  EXPECT_EQ(t1 - t0, 5_ms);
  EXPECT_EQ((t1 - 2_ms).nanos(), 3000000);
  EXPECT_LT(t0, t1);
}

TEST(SimTimeTest, SecondsConversion) {
  const SimTime t = SimTime::Zero() + 1500_ms;
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
}

}  // namespace
}  // namespace quicksand
