#include "quicksand/common/status.h"

#include <string>

#include <gtest/gtest.h>

namespace quicksand {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("proclet 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "proclet 7");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: proclet 7");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::Unavailable("machine down");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_DEATH({ (void)r.value(); }, "NOT_FOUND");
}

}  // namespace
}  // namespace quicksand
