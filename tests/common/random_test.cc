#include "quicksand/common/random.h"

#include <vector>

#include <gtest/gtest.h>

namespace quicksand {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextExponential(3.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, ZipfSkewsTowardSmallRanks) {
  Rng rng(11);
  const uint64_t n = 1000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t k = rng.NextZipf(n, 1.0);
    ASSERT_LT(k, n);
    ++counts[k];
  }
  // Rank 0 should dominate rank 99 heavily under s=1.
  EXPECT_GT(counts[0], counts[99] * 10);
}

TEST(RngTest, ZipfZeroSkewIsRoughlyUniform) {
  Rng rng(11);
  const uint64_t n = 10;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[rng.NextZipf(n, 0.0)];
  }
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i], 10000, 600);
  }
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(123);
  Rng b(123);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fa.Next(), fb.Next());
  }
  // Fork stream differs from parent stream.
  Rng c(123);
  Rng fc = c.Fork();
  EXPECT_NE(fc.Next(), c.Next());
}

}  // namespace
}  // namespace quicksand
