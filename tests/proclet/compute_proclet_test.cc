#include "quicksand/proclet/compute_proclet.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  Fixture() {
    MachineSpec spec;
    spec.cores = 2;
    spec.memory_bytes = 1_GiB;
    cluster.AddMachine(spec);
    cluster.AddMachine(spec);
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ref<ComputeProclet> Make(MachineId where, int workers = 2) {
    PlacementRequest req;
    req.heap_bytes = 4096;
    req.pinned = where;
    return *sim.BlockOn(rt->Create<ComputeProclet>(rt->CtxOn(0), req, workers));
  }

  Task<Status> Submit(Ref<ComputeProclet> cp, ComputeProclet::Job job) {
    // Named task: see the GCC 12 note in sim/task.h.
    auto call = cp.Call(
        cp.runtime()->CtxOn(0),
        [job = std::move(job)](ComputeProclet& p) mutable -> Task<Status> {
          co_return p.Submit(std::move(job));
        });
    co_return co_await std::move(call);
  }
};

ComputeProclet::Job BurnJob(Duration work, int64_t* counter) {
  return [work, counter](Ctx ctx) -> Task<> {
    co_await BurnCpu(ctx, work);
    ++*counter;
  };
}

TEST(ComputeProcletTest, RunsSubmittedJobs) {
  Fixture f;
  Ref<ComputeProclet> cp = f.Make(0);
  int64_t counter = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(f.Submit(cp, BurnJob(1_ms, &counter))).ok());
  }
  f.sim.RunUntilIdle();
  EXPECT_EQ(counter, 10);
  auto* p = f.rt->UnsafeGet<ComputeProclet>(cp.id());
  EXPECT_EQ(p->completed(), 10);
  EXPECT_TRUE(p->idle());
}

TEST(ComputeProcletTest, JobsBurnCpuOnHostMachine) {
  Fixture f;
  Ref<ComputeProclet> cp = f.Make(1);
  int64_t counter = 0;
  EXPECT_TRUE(f.sim.BlockOn(f.Submit(cp, BurnJob(10_ms, &counter))).ok());
  f.sim.RunUntilIdle();
  EXPECT_EQ(counter, 1);
  EXPECT_EQ(f.cluster.machine(1).cpu().TotalBusy(), 10_ms);
  EXPECT_EQ(f.cluster.machine(0).cpu().TotalBusy(), Duration::Zero());
}

TEST(ComputeProcletTest, WorkersBoundConcurrency) {
  Fixture f;
  // 1 worker: jobs serialize even though the machine has 2 cores.
  Ref<ComputeProclet> cp = f.Make(0, /*workers=*/1);
  int64_t counter = 0;
  const SimTime start = f.sim.Now();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(f.Submit(cp, BurnJob(5_ms, &counter))).ok());
  }
  f.sim.RunUntilIdle();
  EXPECT_EQ(counter, 4);
  EXPECT_EQ(f.sim.Now() - start, 20_ms);
}

TEST(ComputeProcletTest, TwoWorkersUseBothCores) {
  Fixture f;
  Ref<ComputeProclet> cp = f.Make(0, /*workers=*/2);
  int64_t counter = 0;
  const SimTime start = f.sim.Now();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(f.Submit(cp, BurnJob(5_ms, &counter))).ok());
  }
  f.sim.RunUntilIdle();
  EXPECT_EQ(counter, 4);
  EXPECT_EQ(f.sim.Now() - start, 10_ms);
}

TEST(ComputeProcletTest, MigrationMovesQueuedJobs) {
  Fixture f;
  Ref<ComputeProclet> cp = f.Make(0, /*workers=*/1);
  int64_t counter = 0;
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(f.Submit(cp, BurnJob(2_ms, &counter))).ok());
  }
  // Migrate while jobs are queued; the in-flight job drains first
  // (OnQuiesce), queued jobs follow the proclet.
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(cp.id(), 1)).ok());
  f.sim.RunUntilIdle();
  EXPECT_EQ(counter, 6);
  // Work ran on both machines: some before the move, the rest after.
  EXPECT_GT(f.cluster.machine(0).cpu().TotalBusy(), Duration::Zero());
  EXPECT_GT(f.cluster.machine(1).cpu().TotalBusy(), Duration::Zero());
  EXPECT_EQ(f.cluster.machine(0).cpu().TotalBusy() +
                f.cluster.machine(1).cpu().TotalBusy(),
            12_ms);
}

TEST(ComputeProcletTest, StealHalfAndInjectPreserveJobs) {
  Fixture f;
  Ref<ComputeProclet> a = f.Make(0, 1);
  Ref<ComputeProclet> b = f.Make(1, 1);
  // Stop workers from draining while we stage jobs: close gates first.
  int64_t counter = 0;
  // Submit slow first job to occupy the worker, then a backlog.
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(f.Submit(a, BurnJob(5_ms, &counter))).ok());
  }
  EXPECT_TRUE(f.sim.BlockOn(f.rt->BeginMaintenance(a.id())).ok());
  EXPECT_TRUE(f.sim.BlockOn(f.rt->BeginMaintenance(b.id())).ok());
  auto* pa = f.rt->UnsafeGet<ComputeProclet>(a.id());
  auto* pb = f.rt->UnsafeGet<ComputeProclet>(b.id());
  const int64_t before = pa->queue_depth();
  auto stolen = pa->StealHalfOfQueue();
  EXPECT_EQ(static_cast<int64_t>(stolen.size()), before - before / 2);
  EXPECT_TRUE(pb->InjectJobs(std::move(stolen)).ok());
  f.rt->EndMaintenance(a.id());
  f.rt->EndMaintenance(b.id());
  f.sim.RunUntilIdle();
  EXPECT_EQ(counter, 9);
}

TEST(ComputeProcletTest, DestroyDropsQueuedJobsAndStopsWorkers) {
  Fixture f;
  Ref<ComputeProclet> cp = f.Make(0, 1);
  int64_t counter = 0;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(f.Submit(cp, BurnJob(10_ms, &counter))).ok());
  }
  // Destroy while the first job runs: it completes (quiesce), the rest drop.
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Destroy(f.rt->CtxOn(0), cp.id())).ok());
  f.sim.RunUntilIdle();
  EXPECT_EQ(counter, 1);
  EXPECT_EQ(f.cluster.machine(0).memory().used(), 0);
}

TEST(ComputeProcletTest, JobExceptionsAreContained) {
  Fixture f;
  Ref<ComputeProclet> cp = f.Make(0);
  int64_t counter = 0;
  EXPECT_TRUE(f.sim
                  .BlockOn(f.Submit(cp,
                                    [](Ctx) -> Task<> {
                                      throw std::runtime_error("job boom");
                                      co_return;
                                    }))
                  .ok());
  EXPECT_TRUE(f.sim.BlockOn(f.Submit(cp, BurnJob(1_ms, &counter))).ok());
  f.sim.RunUntilIdle();
  EXPECT_EQ(counter, 1);  // later jobs unaffected
  auto* p = f.rt->UnsafeGet<ComputeProclet>(cp.id());
  EXPECT_EQ(p->job_errors(), 1);
}

}  // namespace
}  // namespace quicksand
