#include "quicksand/proclet/storage_proclet.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  Fixture() {
    MachineSpec spec;
    spec.memory_bytes = 1_GiB;
    spec.disk.capacity_bytes = 10_GiB;
    spec.disk.iops = 100000;
    spec.disk.bandwidth_bytes_per_sec = 2'000'000'000;
    cluster.AddMachine(spec);
    cluster.AddMachine(spec);
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ref<StorageProclet> Make(MachineId where) {
    PlacementRequest req;
    req.heap_bytes = 4096;
    req.pinned = where;
    return *sim.BlockOn(rt->Create<StorageProclet>(rt->CtxOn(0), req));
  }

  Task<Status> Write(Ref<StorageProclet> sp, uint64_t id, std::string value) {
    const int64_t bytes = WireSizeOf(value);
    // Named task: see the GCC 12 note in sim/task.h.
    auto call = sp.Call(
        rt->CtxOn(0),
        [id, value = std::move(value)](StorageProclet& p) mutable -> Task<Status> {
          return p.WriteObject(id, std::move(value));
        },
        bytes);
    co_return co_await std::move(call);
  }

  Task<Result<std::string>> Read(Ref<StorageProclet> sp, uint64_t id) {
    auto call = sp.Call(
        rt->CtxOn(0), [id](StorageProclet& p) -> Task<Result<std::string>> {
          return p.ReadObject<std::string>(id);
        });
    co_return co_await std::move(call);
  }
};

TEST(StorageProcletTest, WriteReadRoundTrip) {
  Fixture f;
  Ref<StorageProclet> sp = f.Make(0);
  EXPECT_TRUE(f.sim.BlockOn(f.Write(sp, 1, "persistent data")).ok());
  Result<std::string> r = f.sim.BlockOn(f.Read(sp, 1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "persistent data");
}

TEST(StorageProcletTest, ReadMissingFails) {
  Fixture f;
  Ref<StorageProclet> sp = f.Make(0);
  EXPECT_EQ(f.sim.BlockOn(f.Read(sp, 404)).status().code(), StatusCode::kNotFound);
}

TEST(StorageProcletTest, WritesChargeDiskCapacity) {
  Fixture f;
  Ref<StorageProclet> sp = f.Make(1);
  const int64_t before = f.cluster.machine(1).disk().capacity().used();
  EXPECT_TRUE(f.sim.BlockOn(f.Write(sp, 1, std::string(1000, 'x'))).ok());
  EXPECT_GE(f.cluster.machine(1).disk().capacity().used() - before, 1000);
}

TEST(StorageProcletTest, OverwriteAdjustsCapacityDelta) {
  Fixture f;
  Ref<StorageProclet> sp = f.Make(0);
  EXPECT_TRUE(f.sim.BlockOn(f.Write(sp, 1, std::string(1000, 'x'))).ok());
  const int64_t mid = f.cluster.machine(0).disk().capacity().used();
  EXPECT_TRUE(f.sim.BlockOn(f.Write(sp, 1, std::string(500, 'y'))).ok());
  EXPECT_EQ(f.cluster.machine(0).disk().capacity().used(), mid - 500);
}

TEST(StorageProcletTest, DeleteReleasesCapacity) {
  Fixture f;
  Ref<StorageProclet> sp = f.Make(0);
  const int64_t before = f.cluster.machine(0).disk().capacity().used();
  EXPECT_TRUE(f.sim.BlockOn(f.Write(sp, 1, std::string(2000, 'x'))).ok());
  auto del = f.sim.BlockOn(sp.Call(f.rt->CtxOn(0), [](StorageProclet& p) {
    return p.DeleteObject(1);
  }));
  EXPECT_TRUE(del.ok());
  EXPECT_EQ(f.cluster.machine(0).disk().capacity().used(), before);
}

TEST(StorageProcletTest, IoPaysDiskTime) {
  Fixture f;
  Ref<StorageProclet> sp = f.Make(0);
  const SimTime before = f.sim.Now();
  // 100 MB at 2 GB/s = 50 ms.
  EXPECT_TRUE(f.sim.BlockOn(f.Write(sp, 1, std::string(100'000'000, 'x'))).ok());
  EXPECT_GT(f.sim.Now() - before, 45_ms);
}

TEST(StorageProcletTest, MigrationMovesDiskCharges) {
  Fixture f;
  Ref<StorageProclet> sp = f.Make(0);
  EXPECT_TRUE(f.sim.BlockOn(f.Write(sp, 1, std::string(5000, 'x'))).ok());
  const int64_t stored = f.cluster.machine(0).disk().capacity().used();
  EXPECT_GT(stored, 0);
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(sp.id(), 1)).ok());
  EXPECT_EQ(f.cluster.machine(0).disk().capacity().used(), 0);
  EXPECT_EQ(f.cluster.machine(1).disk().capacity().used(), stored);
  // Data still readable after the move.
  EXPECT_EQ(f.sim.BlockOn(f.Read(sp, 1))->size(), 5000u);
}

TEST(StorageProcletTest, MigrationShipsStoredBytes) {
  Fixture f;
  Ref<StorageProclet> sp = f.Make(0);
  // 50 MB on disk: the migration transfer must include it (50MB at 12.5GB/s
  // = 4ms of wire time).
  EXPECT_TRUE(f.sim.BlockOn(f.Write(sp, 1, std::string(50'000'000, 'x'))).ok());
  const SimTime before = f.sim.Now();
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(sp.id(), 1)).ok());
  EXPECT_GT(f.sim.Now() - before, 3_ms);
}

TEST(StorageProcletTest, DestroyReleasesDisk) {
  Fixture f;
  Ref<StorageProclet> sp = f.Make(0);
  EXPECT_TRUE(f.sim.BlockOn(f.Write(sp, 1, std::string(4000, 'x'))).ok());
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Destroy(f.rt->CtxOn(0), sp.id())).ok());
  EXPECT_EQ(f.cluster.machine(0).disk().capacity().used(), 0);
}

}  // namespace
}  // namespace quicksand
