#include "quicksand/proclet/memory_proclet.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  Fixture() {
    MachineSpec spec;
    spec.memory_bytes = 1_GiB;
    cluster.AddMachine(spec);
    cluster.AddMachine(spec);
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ref<MemoryProclet> Make(MachineId where) {
    PlacementRequest req;
    req.heap_bytes = 4096;
    req.pinned = where;
    return *sim.BlockOn(rt->Create<MemoryProclet>(rt->CtxOn(0), req));
  }
};

TEST(MemoryProcletTest, NewPtrLoadRoundTrip) {
  Fixture f;
  Ref<MemoryProclet> mem = f.Make(1);
  const Ctx ctx = f.rt->CtxOn(0);
  DistPtr<int64_t> ptr = *f.sim.BlockOn(NewPtr<int64_t>(ctx, mem, 42));
  EXPECT_TRUE(static_cast<bool>(ptr));
  Result<int64_t> loaded = f.sim.BlockOn(ptr.Load(ctx));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 42);
}

TEST(MemoryProcletTest, StoreOverwrites) {
  Fixture f;
  Ref<MemoryProclet> mem = f.Make(0);
  const Ctx ctx = f.rt->CtxOn(0);
  DistPtr<std::string> ptr =
      *f.sim.BlockOn(NewPtr<std::string>(ctx, mem, std::string("hello")));
  EXPECT_TRUE(f.sim.BlockOn(ptr.Store(ctx, std::string("world!"))).ok());
  EXPECT_EQ(*f.sim.BlockOn(ptr.Load(ctx)), "world!");
}

TEST(MemoryProcletTest, AllocationsChargeHeapAndHostMemory) {
  Fixture f;
  Ref<MemoryProclet> mem = f.Make(1);
  const Ctx ctx = f.rt->CtxOn(0);
  const int64_t before = f.cluster.machine(1).memory().used();
  std::vector<int64_t> big(100000, 7);  // ~800 KB
  DistPtr<std::vector<int64_t>> ptr =
      *f.sim.BlockOn(NewPtr<std::vector<int64_t>>(ctx, mem, big));
  const int64_t after = f.cluster.machine(1).memory().used();
  EXPECT_GE(after - before, 800000);
  EXPECT_TRUE(f.sim.BlockOn(ptr.Free(ctx)).ok());
  EXPECT_EQ(f.cluster.machine(1).memory().used(), before);
}

TEST(MemoryProcletTest, FreeThenLoadFails) {
  Fixture f;
  Ref<MemoryProclet> mem = f.Make(0);
  const Ctx ctx = f.rt->CtxOn(0);
  DistPtr<int64_t> ptr = *f.sim.BlockOn(NewPtr<int64_t>(ctx, mem, 1));
  EXPECT_TRUE(f.sim.BlockOn(ptr.Free(ctx)).ok());
  EXPECT_EQ(f.sim.BlockOn(ptr.Load(ctx)).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(f.sim.BlockOn(ptr.Free(ctx)).code(), StatusCode::kNotFound);
}

TEST(MemoryProcletTest, TypeMismatchIsRejected) {
  Fixture f;
  Ref<MemoryProclet> mem = f.Make(0);
  const Ctx ctx = f.rt->CtxOn(0);
  DistPtr<int64_t> ptr = *f.sim.BlockOn(NewPtr<int64_t>(ctx, mem, 1));
  DistPtr<double> wrong(ptr.home(), ptr.object_id());
  EXPECT_EQ(f.sim.BlockOn(wrong.Load(ctx)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MemoryProcletTest, PointersSurviveMigration) {
  Fixture f;
  Ref<MemoryProclet> mem = f.Make(0);
  const Ctx ctx = f.rt->CtxOn(0);
  DistPtr<int64_t> ptr = *f.sim.BlockOn(NewPtr<int64_t>(ctx, mem, 99));
  EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(mem.id(), 1)).ok());
  EXPECT_EQ(*f.sim.BlockOn(ptr.Load(ctx)), 99);  // location-transparent
}

TEST(MemoryProcletTest, RemoteLoadPaysWireTimeForPayload) {
  Fixture f;
  Ref<MemoryProclet> mem = f.Make(1);
  const Ctx ctx = f.rt->CtxOn(0);
  std::vector<int64_t> big(1000000, 1);  // 8 MB payload
  DistPtr<std::vector<int64_t>> ptr =
      *f.sim.BlockOn(NewPtr<std::vector<int64_t>>(ctx, mem, big));
  const SimTime before = f.sim.Now();
  auto loaded = f.sim.BlockOn(ptr.Load(ctx));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1000000u);
  // 8 MB at 12.5 GB/s is ~640us of response wire time.
  EXPECT_GT(f.sim.Now() - before, 500_us);
}

TEST(MemoryProcletTest, ObjectCountTracksLiveObjects) {
  Fixture f;
  Ref<MemoryProclet> mem = f.Make(0);
  const Ctx ctx = f.rt->CtxOn(0);
  DistPtr<int64_t> a = *f.sim.BlockOn(NewPtr<int64_t>(ctx, mem, 1));
  DistPtr<int64_t> b = *f.sim.BlockOn(NewPtr<int64_t>(ctx, mem, 2));
  auto* p = f.rt->UnsafeGet<MemoryProclet>(mem.id());
  EXPECT_EQ(p->object_count(), 2u);
  EXPECT_TRUE(f.sim.BlockOn(a.Free(ctx)).ok());
  EXPECT_EQ(p->object_count(), 1u);
  (void)b;
}

}  // namespace
}  // namespace quicksand
