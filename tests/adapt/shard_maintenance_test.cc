#include "quicksand/adapt/shard_maintenance.h"

#include <gtest/gtest.h>

#include "quicksand/adapt/controller.h"
#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 2) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 4;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ctx ctx() { return rt->CtxOn(0); }
};

using IntVector = ShardedVector<int64_t>;
using StrMap = ShardedMap<std::string, int64_t>;

TEST(VectorMaintenanceTest, SplitsOversizedShard) {
  Fixture f;
  IntVector::Options options;
  options.max_shard_bytes = 1_MiB;  // PushBack growth never triggers here
  IntVector vec = *f.sim.BlockOn(IntVector::Create(f.ctx(), options));
  for (int64_t i = 0; i < 100; ++i) {
    QS_CHECK(f.sim.BlockOn(vec.PushBack(f.ctx(), i)).ok());
  }
  f.sim.BlockOn(vec.router().Refresh(f.ctx()));
  ASSERT_EQ(vec.router().cached_shards().size(), 1u);

  // Maintain with a tiny max: the 800-byte shard must split.
  ShardMaintenanceStats stats;
  f.sim.BlockOn(MaintainShardedVector(f.ctx(), vec, /*max=*/400, /*min=*/0, &stats));
  EXPECT_GE(stats.splits, 1);
  f.sim.BlockOn(vec.router().Refresh(f.ctx()));
  EXPECT_GE(vec.router().cached_shards().size(), 2u);

  // Every element still reachable, values intact.
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(*f.sim.BlockOn(vec.Get(f.ctx(), static_cast<uint64_t>(i))), i);
  }
}

TEST(VectorMaintenanceTest, RepeatedMaintenanceReachesTargetGranularity) {
  Fixture f;
  IntVector::Options options;
  options.max_shard_bytes = 1_MiB;
  IntVector vec = *f.sim.BlockOn(IntVector::Create(f.ctx(), options));
  for (int64_t i = 0; i < 256; ++i) {
    QS_CHECK(f.sim.BlockOn(vec.PushBack(f.ctx(), i)).ok());
  }
  for (int round = 0; round < 6; ++round) {
    f.sim.BlockOn(MaintainShardedVector(f.ctx(), vec, /*max=*/256, /*min=*/0));
  }
  f.sim.BlockOn(vec.router().Refresh(f.ctx()));
  // 256 elements x 8B = 2048B; max 256B -> at least 8 shards.
  EXPECT_GE(vec.router().cached_shards().size(), 8u);
  // Data integrity sweep.
  Result<std::vector<int64_t>> all = f.sim.BlockOn(vec.GetRange(f.ctx(), 0, 256));
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 256u);
  for (int64_t i = 0; i < 256; ++i) {
    EXPECT_EQ((*all)[static_cast<size_t>(i)], i);
  }
}

TEST(VectorMaintenanceTest, MergesUndersizedNeighbors) {
  Fixture f;
  IntVector::Options options;
  options.max_shard_bytes = 128;  // 16 ints per shard -> many small shards
  IntVector vec = *f.sim.BlockOn(IntVector::Create(f.ctx(), options));
  for (int64_t i = 0; i < 100; ++i) {
    QS_CHECK(f.sim.BlockOn(vec.PushBack(f.ctx(), i)).ok());
  }
  f.sim.BlockOn(vec.router().Refresh(f.ctx()));
  const size_t before = vec.router().cached_shards().size();
  ASSERT_GE(before, 6u);

  // Merge pass with a large max and a min above every shard's size.
  ShardMaintenanceStats stats;
  for (int round = 0; round < 6; ++round) {
    f.sim.BlockOn(MaintainShardedVector(f.ctx(), vec, /*max=*/100000,
                                        /*min=*/1000, &stats));
  }
  EXPECT_GE(stats.merges, 1);
  f.sim.BlockOn(vec.router().Refresh(f.ctx()));
  EXPECT_LT(vec.router().cached_shards().size(), before);
  for (int64_t i = 0; i < 100; i += 7) {
    EXPECT_EQ(*f.sim.BlockOn(vec.Get(f.ctx(), static_cast<uint64_t>(i))), i);
  }
}

TEST(VectorMaintenanceTest, SplitMovesMemoryToOtherMachine) {
  // Machine 0 nearly full: the split payload should land on machine 1.
  Fixture f;
  IntVector::Options options;
  options.max_shard_bytes = 10_MiB;
  IntVector vec = *f.sim.BlockOn(IntVector::Create(f.ctx(), options));
  for (int64_t i = 0; i < 200; ++i) {
    QS_CHECK(f.sim.BlockOn(vec.PushBack(f.ctx(), i)).ok());
  }
  // Force everything onto machine 0, then fill machine 0's memory.
  f.sim.BlockOn(vec.router().Refresh(f.ctx()));
  for (const ShardInfo& s : vec.router().cached_shards()) {
    QS_CHECK(f.sim.BlockOn(f.rt->Migrate(s.proclet, 0)).ok());
  }
  QS_CHECK(f.cluster.machine(0).memory().TryCharge(
      f.cluster.machine(0).memory().free() - 100_KiB));
  f.sim.BlockOn(MaintainShardedVector(f.ctx(), vec, /*max=*/800, /*min=*/0));
  f.sim.BlockOn(vec.router().Refresh(f.ctx()));
  bool any_on_m1 = false;
  for (const ShardInfo& s : vec.router().cached_shards()) {
    if (f.rt->LocationOf(s.proclet) == 1) {
      any_on_m1 = true;
    }
  }
  EXPECT_TRUE(any_on_m1);
}

TEST(MapMaintenanceTest, SplitsAtMedianProjection) {
  Fixture f;
  StrMap map = *f.sim.BlockOn(StrMap::Create(f.ctx()));
  for (int i = 0; i < 200; ++i) {
    QS_CHECK(f.sim.BlockOn(map.Put(f.ctx(), "key" + std::to_string(i), i)).ok());
  }
  ShardMaintenanceStats stats;
  for (int round = 0; round < 4; ++round) {
    f.sim.BlockOn(MaintainShardedMap(f.ctx(), map, /*max=*/2000, /*min=*/0, &stats));
  }
  EXPECT_GE(stats.splits, 2);
  f.sim.BlockOn(map.router().Refresh(f.ctx()));
  EXPECT_GE(map.router().cached_shards().size(), 3u);
  // All keys still resolve.
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(*f.sim.BlockOn(map.Get(f.ctx(), "key" + std::to_string(i))), i);
  }
  EXPECT_EQ(*f.sim.BlockOn(map.Size(f.ctx())), 200);
}

TEST(MapMaintenanceTest, MergeAfterMassErase) {
  // The paper's shrink scenario: deletions leave shards underfull; merging
  // restores memory efficiency.
  Fixture f;
  StrMap map = *f.sim.BlockOn(StrMap::Create(f.ctx()));
  for (int i = 0; i < 300; ++i) {
    QS_CHECK(f.sim.BlockOn(map.Put(f.ctx(), "key" + std::to_string(i), i)).ok());
  }
  for (int round = 0; round < 5; ++round) {
    f.sim.BlockOn(MaintainShardedMap(f.ctx(), map, /*max=*/1500, /*min=*/0));
  }
  f.sim.BlockOn(map.router().Refresh(f.ctx()));
  const size_t split_count = map.router().cached_shards().size();
  ASSERT_GE(split_count, 3u);

  for (int i = 0; i < 300; ++i) {
    if (i % 10 != 0) {
      QS_CHECK(f.sim.BlockOn(map.Erase(f.ctx(), "key" + std::to_string(i))).ok());
    }
  }
  ShardMaintenanceStats stats;
  for (int round = 0; round < 6; ++round) {
    f.sim.BlockOn(MaintainShardedMap(f.ctx(), map, /*max=*/1500, /*min=*/700, &stats));
  }
  EXPECT_GE(stats.merges, 1);
  f.sim.BlockOn(map.router().Refresh(f.ctx()));
  EXPECT_LT(map.router().cached_shards().size(), split_count);
  for (int i = 0; i < 300; i += 10) {
    EXPECT_EQ(*f.sim.BlockOn(map.Get(f.ctx(), "key" + std::to_string(i))), i);
  }
}

TEST(MapMaintenanceTest, MaintenanceUnderMemoryPressureNeverLosesData) {
  // Regression: a split/merge whose destination charge fails used to destroy
  // the extracted payload — silent data loss. Run aggressive maintenance on
  // a nearly-full cluster and verify every key survives.
  Fixture f;
  StrMap map = *f.sim.BlockOn(StrMap::Create(f.ctx()));
  for (int i = 0; i < 400; ++i) {
    QS_CHECK(f.sim.BlockOn(map.Put(f.ctx(), "key" + std::to_string(i), i)).ok());
  }
  // Fill both machines to ~99.9%.
  for (MachineId m = 0; m < f.cluster.size(); ++m) {
    MemoryAccount& mem = f.cluster.machine(m).memory();
    QS_CHECK(mem.TryCharge(mem.free() - 20_KiB));
  }
  for (int round = 0; round < 8; ++round) {
    // Alternate split-pressure and merge-pressure configurations.
    f.sim.BlockOn(MaintainShardedMap(f.ctx(), map, /*max=*/1000, /*min=*/0));
    f.sim.BlockOn(MaintainShardedMap(f.ctx(), map, /*max=*/100000, /*min=*/5000));
  }
  f.sim.RunUntilIdle();
  EXPECT_EQ(*f.sim.BlockOn(map.Size(f.ctx())), 400);
  for (int i = 0; i < 400; ++i) {
    Result<int64_t> v = f.sim.BlockOn(map.Get(f.ctx(), "key" + std::to_string(i)));
    ASSERT_TRUE(v.ok()) << "key" << i << " lost: " << v.status().ToString();
    EXPECT_EQ(*v, i);
  }
}

TEST(MaintenanceTest, SplitBlocksCallsOnlyBriefly) {
  Fixture f;
  IntVector::Options options;
  options.max_shard_bytes = 1_MiB;
  IntVector vec = *f.sim.BlockOn(IntVector::Create(f.ctx(), options));
  for (int64_t i = 0; i < 1000; ++i) {
    QS_CHECK(f.sim.BlockOn(vec.PushBack(f.ctx(), i)).ok());
  }
  f.sim.BlockOn(vec.router().Refresh(f.ctx()));
  const ShardInfo donor = vec.router().cached_shards()[0];
  const SimTime start = f.sim.Now();
  Status s = f.sim.BlockOn(SplitVectorShard(f.ctx(), vec, donor));
  EXPECT_TRUE(s.ok());
  // 8KB of moved data: the disruption window is tens of microseconds.
  EXPECT_LT(f.sim.Now() - start, 1_ms);
}

TEST(AdaptiveControllerTest, PeriodicMaintenanceKeepsShardsBounded) {
  Fixture f;
  IntVector::Options options;
  options.max_shard_bytes = 100_MiB;  // growth never splits on its own
  IntVector vec = *f.sim.BlockOn(IntVector::Create(f.ctx(), options));

  AdaptiveController controller(*f.rt, 0, 1_ms);
  controller.Register("vector", [vec](Ctx ctx) mutable -> Task<> {
    auto maintain = MaintainShardedVector(ctx, vec, /*max=*/512, /*min=*/64);
    co_await std::move(maintain);
  });
  controller.Start();

  // Keep inserting while the controller runs.
  Fiber loader = f.sim.Spawn(
      [](Fixture* fx, IntVector v) -> Task<> {
        for (int64_t i = 0; i < 600; ++i) {
          auto push = v.PushBack(fx->ctx(), i);
          const Result<uint64_t> pushed = co_await std::move(push);
          QS_CHECK(pushed.ok());
          co_await fx->sim.Sleep(50_us);
        }
      }(&f, vec),
      "loader");
  f.sim.RunUntil(f.sim.Now() + 50_ms);
  EXPECT_TRUE(loader.done());
  EXPECT_GT(controller.rounds(), 10);

  f.sim.BlockOn(vec.router().Refresh(f.ctx()));
  using Shard = IntVector::Shard;
  for (const ShardInfo& s : vec.router().cached_shards()) {
    auto* shard = f.rt->UnsafeGet<Shard>(s.proclet);
    ASSERT_NE(shard, nullptr);
    EXPECT_LE(shard->data_bytes(), 512 + 256);  // max plus one in-flight chunk
  }
  // Integrity.
  for (int64_t i = 0; i < 600; i += 37) {
    EXPECT_EQ(*f.sim.BlockOn(vec.Get(f.ctx(), static_cast<uint64_t>(i))), i);
  }
}

}  // namespace
}  // namespace quicksand
