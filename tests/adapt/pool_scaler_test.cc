#include "quicksand/adapt/pool_scaler.h"

#include <gtest/gtest.h>

#include "quicksand/cluster/antagonist.h"
#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 2, int cores = 4) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = cores;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ctx ctx() { return rt->CtxOn(0); }

  DistPool MakePool(int proclets, int workers = 2) {
    DistPool::Options options;
    options.initial_proclets = proclets;
    options.workers_per_proclet = workers;
    return *sim.BlockOn(DistPool::Create(ctx(), options));
  }

  Task<Status> Submit(DistPool& pool, ComputeProclet::Job job) {
    auto submit = pool.Submit(ctx(), std::move(job));
    co_return co_await std::move(submit);
  }
};

ComputeProclet::Job Burn(Duration work, int64_t* done) {
  return [work, done](Ctx ctx) -> Task<> {
    (void)co_await MigratableBurn(ctx, work);
    ++*done;
  };
}

TEST(DistPoolSplitTest, SplitBusiestDividesTheQueue) {
  Fixture f;
  DistPool pool = f.MakePool(1, 1);
  int64_t done = 0;
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(f.Submit(pool, Burn(5_ms, &done))).ok());
  }
  auto* before = f.rt->UnsafeGet<ComputeProclet>(pool.members()[0].id());
  const int64_t backlog_before = before->queue_depth();
  ASSERT_GT(backlog_before, 30);

  Result<Ref<ComputeProclet>> fresh = f.sim.BlockOn(pool.SplitBusiest(f.ctx()));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(pool.members().size(), 2u);
  auto* donor = f.rt->UnsafeGet<ComputeProclet>(pool.members()[0].id());
  auto* child = f.rt->UnsafeGet<ComputeProclet>(fresh->id());
  // The queue was divided roughly in half.
  EXPECT_NEAR(static_cast<double>(donor->queue_depth()),
              static_cast<double>(child->queue_depth()), 2.0);
  f.sim.BlockOn(pool.Drain(f.ctx()));
  EXPECT_EQ(done, 40);  // nothing lost
}

TEST(DistPoolSplitTest, SplitRequiresABacklog) {
  Fixture f;
  DistPool pool = f.MakePool(1);
  auto result = f.sim.BlockOn(pool.SplitBusiest(f.ctx()));
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PoolScalerTest, SplitsUnderBacklogThenMergesWhenDrained) {
  Fixture f(2, 4);
  DistPool pool = f.MakePool(1, 1);
  PoolScalerConfig cfg;
  cfg.backlog_per_member_high = 6.0;
  cfg.backlog_per_member_low = 0.25;
  cfg.max_members = 8;
  PoolScaler scaler(*f.rt, pool, cfg);
  scaler.Start();

  int64_t done = 0;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(f.Submit(pool, Burn(2_ms, &done))).ok());
  }
  // 400ms of work for one worker; the scaler splits until the 8 cores chew
  // through it, then merges back down.
  f.sim.RunUntil(f.sim.Now() + 40_ms);
  EXPECT_GT(pool.members().size(), 2u);
  EXPECT_GT(scaler.splits(), 0);

  f.sim.BlockOn(pool.Drain(f.ctx()));
  f.sim.RunUntil(f.sim.Now() + 50_ms);
  EXPECT_EQ(pool.members().size(), 1u);
  EXPECT_GT(scaler.merges(), 0);
  EXPECT_EQ(done, 200);
}

TEST(PoolScalerTest, NoSplitWithoutIdleCpu) {
  // The paper's guard: "splitting occurs only if there are enough CPU
  // resources in the cluster for the new proclet".
  Fixture f(2, 2);
  // Saturate every core with high-priority antagonists.
  std::vector<std::unique_ptr<PhasedAntagonist>> antagonists;
  for (MachineId m = 0; m < f.cluster.size(); ++m) {
    PhasedAntagonistConfig cfg;
    cfg.busy = Duration::Seconds(1);
    cfg.idle = 1_ms;
    antagonists.push_back(
        std::make_unique<PhasedAntagonist>(f.sim, f.cluster.machine(m), cfg));
    antagonists.back()->Start();
  }
  DistPool pool = f.MakePool(1, 1);
  PoolScalerConfig cfg;
  cfg.backlog_per_member_high = 4.0;
  cfg.min_cluster_idle_cores = 1.0;
  PoolScaler scaler(*f.rt, pool, cfg);
  scaler.Start();
  int64_t done = 0;
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(f.Submit(pool, Burn(2_ms, &done))).ok());
  }
  f.sim.RunUntil(f.sim.Now() + 50_ms);
  EXPECT_EQ(scaler.splits(), 0);
  EXPECT_EQ(pool.members().size(), 1u);
}

TEST(PoolScalerTest, RespectsMaxMembers) {
  Fixture f(2, 8);
  DistPool pool = f.MakePool(1, 1);
  PoolScalerConfig cfg;
  cfg.backlog_per_member_high = 1.0;
  cfg.max_members = 3;
  PoolScaler scaler(*f.rt, pool, cfg);
  scaler.Start();
  int64_t done = 0;
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(f.Submit(pool, Burn(2_ms, &done))).ok());
  }
  f.sim.RunUntil(f.sim.Now() + 30_ms);
  EXPECT_LE(pool.members().size(), 3u);
}

}  // namespace
}  // namespace quicksand
