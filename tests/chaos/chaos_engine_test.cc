// Chaos engine unit tests: the generator's structural guarantees, the
// shrinker's contract on a cheap synthetic predicate, and RunChaos
// end-to-end — a safe run must survive deterministically, and the
// deliberately reintroduced crash-mid-reshape bug (unsafe_reshape) must be
// caught by an oracle. The expensive sweep lives in bench/ab11_chaos.cc;
// these tests pin the engine's semantics at tier-1 cost.

#include "quicksand/chaos/harness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "quicksand/chaos/oracles.h"
#include "quicksand/chaos/schedule.h"
#include "quicksand/chaos/shrink.h"

namespace quicksand {
namespace {

ChaosScheduleOptions GenOptions() {
  ChaosScheduleOptions opt;
  opt.machines = 6;
  opt.horizon = Duration::Millis(60);
  opt.events = 8;
  opt.max_crashes = 2;
  return opt;
}

bool IsFailStop(const ChaosEvent& e) {
  return e.kind == ChaosEventKind::kCrash ||
         e.kind == ChaosEventKind::kRevocation;
}

TEST(ChaosScheduleTest, SameSeedSameSchedule) {
  const ChaosScheduleOptions opt = GenOptions();
  const ChaosSchedule a = GenerateSchedule(42, opt);
  const ChaosSchedule b = GenerateSchedule(42, opt);
  EXPECT_EQ(FormatSchedule(a), FormatSchedule(b));
  ASSERT_EQ(a.events.size(), static_cast<size_t>(opt.events));

  // Different seeds should (essentially always) differ — a constant
  // generator would make the seeded sweep meaningless.
  const ChaosSchedule c = GenerateSchedule(43, opt);
  EXPECT_NE(FormatSchedule(a), FormatSchedule(c));
}

TEST(ChaosScheduleTest, GeneratedSchedulesAreStructurallyDrivable) {
  const ChaosScheduleOptions opt = GenOptions();
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const ChaosSchedule s = GenerateSchedule(seed, opt);
    std::set<MachineId> fail_stopped;
    Duration prev = Duration::Zero();
    for (const ChaosEvent& e : s.events) {
      // Machine 0 hosts the frontend, detector, and recovery: never a
      // fault target.
      EXPECT_NE(e.a, MachineId{0}) << "seed " << seed;
      if (e.kind == ChaosEventKind::kPartitionOneWay ||
          e.kind == ChaosEventKind::kPartition ||
          e.kind == ChaosEventKind::kLinkLoss ||
          e.kind == ChaosEventKind::kDelaySpike) {
        EXPECT_NE(e.a, e.b) << "seed " << seed;
      }
      // Events are sorted and land inside the horizon.
      EXPECT_GE(e.at.nanos(), prev.nanos()) << "seed " << seed;
      prev = e.at;
      EXPECT_LE((e.at + e.duration).nanos(), opt.horizon.nanos())
          << "seed " << seed;
      if (IsFailStop(e)) {
        fail_stopped.insert(e.a);
      }
    }
    EXPECT_LE(static_cast<int>(fail_stopped.size()), opt.max_crashes)
        << "seed " << seed;
  }
}

TEST(ChaosScheduleTest, CrashCapLeavesTwoSurvivingHosts) {
  // Even when asked for an absurd crash budget, the generator must keep at
  // least two non-controller hosts alive (a draw over the cap degrades to
  // a partition of the same machine).
  ChaosScheduleOptions opt = GenOptions();
  opt.machines = 4;      // hosts 1..3
  opt.max_crashes = 10;  // clamped to hosts - 2 = 1
  for (uint64_t seed = 0; seed < 100; ++seed) {
    const ChaosSchedule s = GenerateSchedule(seed, opt);
    std::set<MachineId> fail_stopped;
    for (const ChaosEvent& e : s.events) {
      if (IsFailStop(e)) {
        fail_stopped.insert(e.a);
      }
    }
    EXPECT_LE(static_cast<int>(fail_stopped.size()), 1) << "seed " << seed;
  }
}

TEST(ShrinkScheduleTest, DdminFindsTheMinimalFailingCore) {
  // Synthetic predicate: "fails" iff the schedule still contains at least
  // one crash AND at least one delay spike. The minimal core is 2 events;
  // everything else is chaff the shrinker must discard.
  ChaosSchedule fat = GenerateSchedule(7, GenOptions());
  auto add = [&fat](ChaosEventKind kind, MachineId a, MachineId b,
                    Duration at) {
    ChaosEvent e;
    e.kind = kind;
    e.a = a;
    e.b = b;
    e.at = at;
    e.duration = Duration::Millis(5);
    fat.events.push_back(e);
  };
  // Guarantee the core exists regardless of what seed 7 drew.
  add(ChaosEventKind::kCrash, 3, 0, Duration::Millis(10));
  add(ChaosEventKind::kDelaySpike, 1, 2, Duration::Millis(20));
  std::sort(fat.events.begin(), fat.events.end(),
            [](const ChaosEvent& x, const ChaosEvent& y) {
              return x.at.nanos() < y.at.nanos();
            });

  auto still_fails = [](const ChaosSchedule& s) {
    bool crash = false;
    bool spike = false;
    for (const ChaosEvent& e : s.events) {
      crash = crash || e.kind == ChaosEventKind::kCrash;
      spike = spike || e.kind == ChaosEventKind::kDelaySpike;
    }
    return crash && spike;
  };
  ASSERT_TRUE(still_fails(fat));

  const ShrinkResult r = ShrinkSchedule(fat, still_fails, /*max_probes=*/200);
  EXPECT_EQ(r.schedule.events.size(), 2u);
  EXPECT_TRUE(still_fails(r.schedule));  // the result fails by construction
  EXPECT_GT(r.probes, 0);
  EXPECT_LE(r.probes, 200);
}

TEST(ShrinkScheduleTest, ReturnsTheOriginalWhenNothingCanGo) {
  ChaosSchedule tight;
  tight.seed = 1;
  ChaosEvent e;
  e.kind = ChaosEventKind::kCrash;
  e.a = 2;
  e.at = Duration::Millis(10);
  tight.events.push_back(e);

  const ShrinkResult r = ShrinkSchedule(
      tight, [](const ChaosSchedule& s) { return !s.events.empty(); },
      /*max_probes=*/50);
  ASSERT_EQ(r.schedule.events.size(), 1u);
  EXPECT_EQ(r.schedule.events[0].kind, ChaosEventKind::kCrash);
}

ChaosHarnessOptions TestProfile() {
  ChaosHarnessOptions opt;
  opt.machines = 6;
  opt.run = Duration::Millis(60);
  opt.replicate = false;
  opt.autoscale = true;
  return opt;
}

TEST(RunChaosTest, FixedSeedSurvivesAndReplaysBitForBit) {
  ChaosScheduleOptions gen = GenOptions();
  const ChaosSchedule schedule = GenerateSchedule(3, gen);
  const ChaosRunResult first = RunChaos(schedule, TestProfile());
  EXPECT_TRUE(first.survived) << FormatViolations(first.violations);
  EXPECT_TRUE(first.violations.empty())
      << FormatViolations(first.violations);
  EXPECT_TRUE(first.drained);
  EXPECT_TRUE(first.table_live);
  EXPECT_GT(first.acked, 0);
  // A passing run carries no postmortems — they are for failures only.
  EXPECT_TRUE(first.postmortems.empty());

  const ChaosRunResult second = RunChaos(schedule, TestProfile());
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.acked, second.acked);
  EXPECT_EQ(first.started, second.started);
}

// The crafted schedule from the A11 bug hunt, reduced to its proven core:
// a flash crowd forces splits onto the idle hosts, the delay-spiked
// donor->target links hold each copy in flight for ~20ms, and the crash of
// a split target lands inside the window.
ChaosSchedule CrashMidReshapeSchedule() {
  ChaosSchedule s;
  s.seed = 0xB06;
  auto add = [&s](ChaosEventKind kind, Duration at, Duration duration,
                  MachineId a, MachineId b, double magnitude,
                  Duration extra) {
    ChaosEvent e;
    e.kind = kind;
    e.at = at;
    e.duration = duration;
    e.a = a;
    e.b = b;
    e.magnitude = magnitude;
    e.extra = extra;
    s.events.push_back(e);
  };
  add(ChaosEventKind::kFlashCrowd, Duration::Millis(8), Duration::Millis(30),
      1, 0, 4.0, Duration::Zero());
  for (const MachineId src : {MachineId{1}, MachineId{2}}) {
    for (const MachineId dst : {MachineId{3}, MachineId{4}, MachineId{5}}) {
      add(ChaosEventKind::kDelaySpike, Duration::Millis(5),
          Duration::Millis(50), src, dst, 0.0, Duration::Millis(20));
    }
  }
  add(ChaosEventKind::kCrash, Duration::Millis(20), Duration::Zero(), 4, 0,
      0.0, Duration::Zero());
  add(ChaosEventKind::kCrash, Duration::Millis(26), Duration::Zero(), 5, 0,
      0.0, Duration::Zero());
  add(ChaosEventKind::kCrash, Duration::Millis(32), Duration::Zero(), 3, 0,
      0.0, Duration::Zero());
  return s;
}

TEST(RunChaosTest, OraclesCatchTheUnsafeReshapeAndHardenedPathSurvives) {
  const ChaosSchedule kill = CrashMidReshapeSchedule();

  // Pre-hardening install: a crash of the split target mid-copy vaporizes
  // the extracted range, acked writes and all. The ledger must notice.
  ChaosHarnessOptions unsafe_opt = TestProfile();
  unsafe_opt.unsafe_reshape = true;
  const ChaosRunResult broken = RunChaos(kill, unsafe_opt);
  EXPECT_FALSE(broken.violations.empty());
  EXPECT_FALSE(broken.survived);
  // Failures carry postmortems for every dead machine.
  EXPECT_FALSE(broken.postmortems.empty());

  // The hardened path rolls back (or fence-aborts) the orphan half: the
  // exact same kill shot must pass clean.
  const ChaosRunResult hardened = RunChaos(kill, TestProfile());
  EXPECT_TRUE(hardened.violations.empty())
      << FormatViolations(hardened.violations);
  EXPECT_GE(hardened.reshape_rollbacks + hardened.reshape_payload_discards,
            1);
}

TEST(RunChaosTest, DurableProfileToleratesOneCrashWithStrictLedger) {
  ChaosScheduleOptions gen = GenOptions();
  gen.max_crashes = 1;
  const ChaosSchedule schedule = GenerateSchedule(5, gen);
  ChaosHarnessOptions opt = TestProfile();
  opt.replicate = true;  // pins shards; reshaping refused
  opt.autoscale = false;
  const ChaosRunResult r = RunChaos(schedule, opt);
  EXPECT_TRUE(r.survived) << FormatViolations(r.violations);
  EXPECT_TRUE(r.violations.empty()) << FormatViolations(r.violations);
}

// Regression (found by the seeded sweep): under this schedule a crash lands
// while a Put is mid-service. The fiber finishes against the limbo corpse —
// Invoke rightly discards the result, but the runtime used to record a
// commit instant for the zombie apply, attributed to the controller because
// the directory entry was already erased. The retry's legitimate re-commit
// on the promoted backup then looked like a double-apply to the
// exactly-once oracle. NoteCommittedRpc now drops applies against lost
// proclets (Runtime::Stats::zombie_applies counts them).
TEST(RunChaosTest, ZombieApplyDuringFailoverIsNotADoubleCommit) {
  ChaosScheduleOptions gen = GenOptions();
  gen.max_crashes = 1;
  const ChaosSchedule schedule = GenerateSchedule(1011, gen);
  ChaosHarnessOptions opt = TestProfile();
  opt.replicate = true;
  opt.autoscale = false;
  const ChaosRunResult r = RunChaos(schedule, opt);
  EXPECT_TRUE(r.survived) << FormatViolations(r.violations);
  EXPECT_TRUE(r.violations.empty()) << FormatViolations(r.violations);
  EXPECT_EQ(r.crashes, 1);
}

}  // namespace
}  // namespace quicksand
