// Core tracer behavior: stamping, span pairing, ring wrap-around, digest
// stability, and the TraceQuery oracle's causality primitives.

#include "quicksand/trace/trace.h"

#include <gtest/gtest.h>

#include <cstring>

#include "quicksand/sim/simulator.h"
#include "quicksand/trace/query.h"

namespace quicksand {
namespace {

TEST(TracerTest, InstantEventsAreStampedAndTotallyOrdered) {
  Simulator sim;
  Tracer tracer(sim, 2);

  tracer.Instant(TraceContext{}, 0, TraceOp::kSpawn, /*proclet=*/7);
  sim.RunFor(1_ms);
  tracer.Instant(TraceContext{}, 1, TraceOp::kCrash);

  EXPECT_EQ(tracer.recorded(), 2);
  const std::vector<TraceEvent> all = tracer.Snapshot();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].op, TraceOp::kSpawn);
  EXPECT_EQ(all[0].proclet, 7u);
  EXPECT_EQ(all[0].machine, 0u);
  EXPECT_EQ(all[1].op, TraceOp::kCrash);
  EXPECT_EQ(all[1].time - all[0].time, 1_ms);
  EXPECT_LT(all[0].seq, all[1].seq);
}

TEST(TracerTest, SpanBeginEndPairAndQueryReconstructsDuration) {
  Simulator sim;
  Tracer tracer(sim, 2);

  const TraceContext span = tracer.BeginSpan(TraceContext{}, 0,
                                             TraceOp::kMigrate, /*proclet=*/3);
  EXPECT_TRUE(span.valid());
  sim.RunFor(2_ms);
  tracer.EndSpan(span, 0, "ok", /*arg=*/42);

  TraceQuery query = TraceQuery::FromTracer(tracer);
  const std::vector<TraceSpan> spans = query.SpansOf(TraceOp::kMigrate);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].ended);
  EXPECT_EQ(spans[0].duration(), 2_ms);
  EXPECT_EQ(spans[0].proclet, 3u);
  EXPECT_EQ(spans[0].end_arg, 42);
  EXPECT_STREQ(spans[0].detail, "ok");
  EXPECT_EQ(query.SpansOfProclet(3).size(), 1u);
}

TEST(TracerTest, ChildSpansOnOtherMachinesFormOneCausalTree) {
  Simulator sim;
  Tracer tracer(sim, 3);

  const TraceContext root = tracer.BeginSpan(TraceContext{}, 0, TraceOp::kRecover);
  const TraceContext child_a =
      tracer.BeginSpan(root, 1, TraceOp::kRpcAttempt);
  tracer.Instant(child_a, 2, TraceOp::kRpcRecv);
  tracer.EndSpan(child_a, 1);
  const TraceContext child_b = tracer.BeginSpan(root, 2, TraceOp::kMigrate);
  tracer.EndSpan(child_b, 2);
  tracer.EndSpan(root, 0);

  TraceQuery query = TraceQuery::FromTracer(tracer);
  ASSERT_EQ(query.TraceIds().size(), 1u);
  const TraceId id = query.TraceIds().front();
  EXPECT_EQ(id, root.trace_id);
  EXPECT_TRUE(query.SingleCausalTree(id));
  EXPECT_EQ(query.MachinesInTrace(id).size(), 3u);

  // Two separate roots are two trees, each singly rooted.
  const TraceContext other = tracer.BeginSpan(TraceContext{}, 0, TraceOp::kEvacuate);
  tracer.EndSpan(other, 0);
  query = TraceQuery::FromTracer(tracer);
  EXPECT_EQ(query.TraceIds().size(), 2u);
  EXPECT_TRUE(query.SingleCausalTree(other.trace_id));
}

TEST(TracerTest, RingWrapKeepsNewestAndCountsDropped) {
  Simulator sim;
  TracerOptions options;
  options.ring_capacity = 4;
  Tracer tracer(sim, 1, options);

  for (int i = 0; i < 10; ++i) {
    tracer.Instant(TraceContext{}, 0, TraceOp::kSpawn, /*proclet=*/0,
                   /*arg=*/i);
  }
  EXPECT_EQ(tracer.recorded(), 10);
  EXPECT_EQ(tracer.dropped(0), 6);
  const std::vector<TraceEvent> kept = tracer.MachineEvents(0);
  ASSERT_EQ(kept.size(), 4u);
  // Oldest-first: 6, 7, 8, 9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(kept[static_cast<size_t>(i)].arg, 6 + i);
  }
  const std::vector<TraceEvent> last2 = tracer.LastEvents(0, 2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0].arg, 8);
  EXPECT_EQ(last2[1].arg, 9);
}

TEST(TracerTest, DigestIsReproducibleAndContentSensitive) {
  Simulator sim_a;
  Tracer a(sim_a, 2);
  Simulator sim_b;
  Tracer b(sim_b, 2);

  for (Tracer* t : {&a, &b}) {
    const TraceContext span = t->BeginSpan(TraceContext{}, 0, TraceOp::kInvoke, 5);
    t->Instant(span, 1, TraceOp::kRpcSend, 0, 64);
    t->EndSpan(span, 0, "ok");
  }
  EXPECT_EQ(a.Digest(), b.Digest());

  // One more event — or a different detail string — changes the digest.
  const uint64_t before = a.Digest();
  a.Instant(TraceContext{}, 0, TraceOp::kCommit, 5, 1, "committed");
  EXPECT_NE(a.Digest(), before);

  Simulator sim_c;
  Tracer c(sim_c, 2);
  const TraceContext span = c.BeginSpan(TraceContext{}, 0, TraceOp::kInvoke, 5);
  c.Instant(span, 1, TraceOp::kRpcSend, 0, 64);
  c.EndSpan(span, 0, "aborted");  // differs only in the detail string
  EXPECT_NE(c.Digest(), b.Digest());
}

TEST(TracerTest, SpanGuardEndsAbortOnUnwindAndOkWhenTold) {
  Simulator sim;
  Tracer tracer(sim, 1);

  {
    SpanGuard guard(&tracer,
                    tracer.BeginSpan(TraceContext{}, 0, TraceOp::kInvoke), 0);
    // No End(): destruction plays the exception-unwind path.
  }
  {
    SpanGuard guard(&tracer,
                    tracer.BeginSpan(TraceContext{}, 0, TraceOp::kInvoke), 0);
    guard.End("ok");
  }

  TraceQuery query = TraceQuery::FromTracer(tracer);
  const std::vector<TraceSpan> spans = query.SpansOf(TraceOp::kInvoke);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].detail, "abort");
  EXPECT_STREQ(spans[1].detail, "ok");
}

TEST(TracerTest, RecordingNeverAdvancesSimTime) {
  Simulator sim;
  Tracer tracer(sim, 1);
  const SimTime before = sim.Now();
  for (int i = 0; i < 1000; ++i) {
    const TraceContext span =
        tracer.BeginSpan(TraceContext{}, 0, TraceOp::kInvoke);
    tracer.Instant(span, 0, TraceOp::kRpcSend);
    tracer.EndSpan(span, 0);
  }
  EXPECT_EQ(sim.Now(), before);
}

TEST(TracerTest, HappensBeforeFollowsTimeThenSeq) {
  Simulator sim;
  Tracer tracer(sim, 1);

  const TraceContext first = tracer.BeginSpan(TraceContext{}, 0, TraceOp::kMigrate);
  sim.RunFor(1_ms);
  tracer.EndSpan(first, 0);
  const TraceContext second = tracer.BeginSpan(TraceContext{}, 0, TraceOp::kMigrate);
  tracer.EndSpan(second, 0);

  TraceQuery query = TraceQuery::FromTracer(tracer);
  const std::vector<TraceSpan> spans = query.SpansOf(TraceOp::kMigrate);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_TRUE(query.HappensBefore(spans[0], spans[1]));
  EXPECT_FALSE(query.HappensBefore(spans[1], spans[0]));

  const LatencyHistogram durations = query.DurationsOf(TraceOp::kMigrate);
  EXPECT_EQ(durations.count(), 2);
  EXPECT_EQ(durations.Max(), 1_ms);
}

}  // namespace
}  // namespace quicksand
