// FlightRecorder: freezing a machine's trailing ring at the moment it is
// written off, idempotence per (machine, reason), and the Runtime hooks that
// capture automatically on crash and DeclareMachineDead.

#include "quicksand/trace/flight_recorder.h"

#include <gtest/gtest.h>

#include <memory>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/proclet/memory_proclet.h"
#include "quicksand/sim/simulator.h"

namespace quicksand {
namespace {

TEST(FlightRecorderTest, CaptureFreezesTrailingEventsAndDropCount) {
  Simulator sim;
  TracerOptions options;
  options.ring_capacity = 4;
  Tracer tracer(sim, 2, options);
  FlightRecorder recorder(tracer, /*last_n=*/1000);

  for (int i = 0; i < 10; ++i) {
    sim.RunFor(1_ms);
    tracer.Instant(TraceContext{}, 0, TraceOp::kSpawn, /*proclet=*/0,
                   /*arg=*/i);
  }
  recorder.Capture(0, "crash");
  // The ring keeps moving after the capture; the postmortem must not.
  for (int i = 10; i < 14; ++i) {
    tracer.Instant(TraceContext{}, 0, TraceOp::kSpawn, 0, i);
  }

  const Postmortem* pm = recorder.ForMachine(0);
  ASSERT_NE(pm, nullptr);
  EXPECT_EQ(pm->reason, "crash");
  EXPECT_EQ(pm->dropped, 6);
  ASSERT_EQ(pm->events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pm->events[static_cast<size_t>(i)].arg, 6 + i);
  }
  // captured_at stamps the newest retained event.
  EXPECT_EQ(pm->captured_at, pm->events.back().time);
  EXPECT_EQ(recorder.ForMachine(1), nullptr);
}

TEST(FlightRecorderTest, CaptureHonorsLastNBelowRingCapacity) {
  Simulator sim;
  Tracer tracer(sim, 1);
  FlightRecorder recorder(tracer, /*last_n=*/3);
  for (int i = 0; i < 8; ++i) {
    tracer.Instant(TraceContext{}, 0, TraceOp::kInvoke, 0, i);
  }
  recorder.Capture(0, "partition");
  const Postmortem* pm = recorder.ForMachine(0);
  ASSERT_NE(pm, nullptr);
  ASSERT_EQ(pm->events.size(), 3u);
  EXPECT_EQ(pm->events.front().arg, 5);
  EXPECT_EQ(pm->events.back().arg, 7);
}

TEST(FlightRecorderTest, CaptureIsIdempotentPerMachineAndReason) {
  Simulator sim;
  Tracer tracer(sim, 2);
  FlightRecorder recorder(tracer, 1000);

  tracer.Instant(TraceContext{}, 1, TraceOp::kSuspect);
  recorder.Capture(1, "crash");
  tracer.Instant(TraceContext{}, 1, TraceOp::kConfirmDead);
  recorder.Capture(1, "crash");  // detector re-fires: no second snapshot
  ASSERT_EQ(recorder.postmortems().size(), 1u);
  EXPECT_EQ(recorder.postmortems()[0].events.size(), 1u);

  // A different reason for the same machine is a distinct postmortem, and
  // ForMachine returns the most recent one.
  recorder.Capture(1, "declared_dead");
  ASSERT_EQ(recorder.postmortems().size(), 2u);
  const Postmortem* pm = recorder.ForMachine(1);
  ASSERT_NE(pm, nullptr);
  EXPECT_EQ(pm->reason, "declared_dead");
  EXPECT_EQ(pm->events.size(), 2u);
}

struct RuntimeFixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;
  std::unique_ptr<FaultInjector> faults;
  std::unique_ptr<Tracer> tracer;
  std::unique_ptr<FlightRecorder> recorder;

  explicit RuntimeFixture(int machines = 3) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 4;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
    faults = std::make_unique<FaultInjector>(sim, cluster);
    rt->AttachFaultInjector(*faults);
    tracer = std::make_unique<Tracer>(sim, cluster.size());
    rt->AttachTracer(tracer.get());
    recorder = std::make_unique<FlightRecorder>(*tracer, 1000);
    rt->AttachFlightRecorder(recorder.get());
  }

  Ref<MemoryProclet> MakePinned(MachineId where) {
    PlacementRequest req;
    req.heap_bytes = 1_MiB;
    req.pinned = where;
    return *sim.BlockOn(rt->Create<MemoryProclet>(rt->CtxOn(0), req));
  }
};

TEST(FlightRecorderTest, RuntimeCapturesPostmortemOnCrash) {
  RuntimeFixture f;
  (void)f.MakePinned(1);
  f.faults->FailNow(1);

  const Postmortem* pm = f.recorder->ForMachine(1);
  ASSERT_NE(pm, nullptr);
  EXPECT_EQ(pm->reason, "crash");
  ASSERT_FALSE(pm->events.empty());
  // The tracer records the crash marker before the recorder freezes the
  // ring, so the death event itself closes the postmortem timeline.
  EXPECT_EQ(pm->events.back().op, TraceOp::kCrash);
  EXPECT_EQ(pm->captured_at, f.sim.Now());
  // Other machines are not captured.
  EXPECT_EQ(f.recorder->ForMachine(2), nullptr);
}

TEST(FlightRecorderTest, RuntimeCapturesPostmortemOnDeclareMachineDead) {
  RuntimeFixture f;
  (void)f.MakePinned(1);
  f.rt->DeclareMachineDead(1);

  const Postmortem* pm = f.recorder->ForMachine(1);
  ASSERT_NE(pm, nullptr);
  EXPECT_EQ(pm->reason, "declared_dead");
  ASSERT_FALSE(pm->events.empty());
  EXPECT_EQ(pm->events.back().op, TraceOp::kDeclareDead);

  // Redundant verdicts (oracle after detector) do not duplicate postmortems.
  const size_t count = f.recorder->postmortems().size();
  f.rt->DeclareMachineDead(1);
  EXPECT_EQ(f.recorder->postmortems().size(), count);
}

TEST(FlightRecorderTest, DumpRendersHeaderAndEventLines) {
  RuntimeFixture f;
  (void)f.MakePinned(1);
  f.faults->FailNow(1);

  const Postmortem* pm = f.recorder->ForMachine(1);
  ASSERT_NE(pm, nullptr);
  const std::string text = FlightRecorder::Dump(*pm);
  EXPECT_NE(text.find("postmortem m1 (crash)"), std::string::npos);
  EXPECT_NE(text.find("crash"), std::string::npos);
  // One line per event plus the header.
  size_t lines = 0;
  for (char c : text) {
    lines += (c == '\n') ? 1u : 0u;
  }
  EXPECT_EQ(lines, pm->events.size() + 1);
}

}  // namespace
}  // namespace quicksand
