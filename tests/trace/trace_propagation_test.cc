// TraceContext propagation across the layers that forward it: the RPC
// retry/backoff loop, proclet invocation, and epoch-fenced migration. The
// load-bearing assertion: a stale-epoch request shows up in the trace as an
// `abort`, and NEVER as a `commit`.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "quicksand/common/bytes.h"
#include "quicksand/net/rpc.h"
#include "quicksand/proclet/fenced_kv_proclet.h"
#include "quicksand/trace/query.h"

namespace quicksand {
namespace {

Task<int64_t> FlakyServer(Simulator& sim, int* calls, int slow_calls) {
  if ((*calls)++ < slow_calls) {
    co_await sim.Sleep(10_ms);
  }
  co_return 64;
}

TEST(TracePropagationTest, RetryLoopNestsAttemptsUnderOneEnvelope) {
  Simulator sim;
  Fabric fabric{sim, FabricConfig{}};
  fabric.AddNic(0);
  fabric.AddNic(1);
  Rpc rpc{sim, fabric};
  Tracer tracer(sim, 2);
  rpc.AttachTracer(&tracer);

  int calls = 0;
  RpcRetryPolicy policy;
  policy.max_attempts = 3;
  const Status s = sim.BlockOn(rpc.RoundTripWithRetry(
      0, 1, 64, [&] { return FlakyServer(sim, &calls, 2); }, 1_ms, policy));
  ASSERT_TRUE(s.ok());

  TraceQuery query = TraceQuery::FromTracer(tracer);

  // One envelope span, three attempt spans, all in the same causal tree.
  const std::vector<TraceSpan> envelopes = query.SpansOf(TraceOp::kRpc);
  ASSERT_EQ(envelopes.size(), 1u);
  EXPECT_TRUE(envelopes[0].ended);
  EXPECT_STREQ(envelopes[0].detail, "ok");
  EXPECT_EQ(envelopes[0].end_arg, 2);  // succeeded on attempt index 2

  const std::vector<TraceSpan> attempts = query.SpansOf(TraceOp::kRpcAttempt);
  ASSERT_EQ(attempts.size(), 3u);
  for (const TraceSpan& attempt : attempts) {
    EXPECT_EQ(attempt.trace_id, envelopes[0].trace_id);
    EXPECT_EQ(attempt.parent, envelopes[0].id);
  }
  EXPECT_STREQ(attempts[0].detail, "deadline_exceeded");
  EXPECT_STREQ(attempts[1].detail, "deadline_exceeded");
  EXPECT_STREQ(attempts[2].detail, "ok");

  // Two backoff instants, carrying the retried status, ordered between the
  // failed attempt and the next one.
  const std::vector<TraceEvent> retries = query.Instants(TraceOp::kRpcRetry);
  ASSERT_EQ(retries.size(), 2u);
  for (const TraceEvent& retry : retries) {
    EXPECT_EQ(retry.trace_id, envelopes[0].trace_id);
    EXPECT_STREQ(retry.detail, "DEADLINE_EXCEEDED");
  }
  EXPECT_TRUE(query.HappensBefore(attempts[0], retries[0]));
  EXPECT_TRUE(query.HappensBefore(retries[0], attempts[1]));
  EXPECT_TRUE(query.HappensBefore(attempts[1], retries[1]));
  EXPECT_TRUE(query.HappensBefore(retries[1], attempts[2]));

  EXPECT_TRUE(query.SingleCausalTree(envelopes[0].trace_id));
  // Request legs landed on both machines: the tree is cross-machine.
  EXPECT_EQ(query.MachinesInTrace(envelopes[0].trace_id).size(), 2u);
}

struct RuntimeFixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;
  std::unique_ptr<Tracer> tracer;

  explicit RuntimeFixture(int machines = 4, bool traced = true) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 4;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
    if (traced) {
      tracer = std::make_unique<Tracer>(sim, cluster.size());
      rt->AttachTracer(tracer.get());
    }
  }

  Ref<FencedKvProclet> MakeKv(MachineId where) {
    PlacementRequest req;
    req.heap_bytes = 1_MiB;
    req.pinned = where;
    return *sim.BlockOn(rt->Create<FencedKvProclet>(rt->CtxOn(0), req));
  }
};

Task<FencedKvProclet::PutResult> Put(Ref<FencedKvProclet> kv, Ctx ctx,
                                     uint64_t epoch, uint64_t rid,
                                     uint64_t key, int64_t value) {
  auto call = kv.Call(
      ctx, [epoch, rid, key, value](FencedKvProclet& p)
      -> Task<FencedKvProclet::PutResult> {
        co_return p.Put(epoch, rid, key, value);
      });
  co_return co_await std::move(call);
}

TEST(TracePropagationTest, MigrationSpanStitchesAcrossMachines) {
  RuntimeFixture f;
  Ref<FencedKvProclet> kv = f.MakeKv(1);
  ASSERT_TRUE(f.sim.BlockOn(f.rt->Migrate(kv.id(), 2)).ok());

  TraceQuery query = TraceQuery::FromTracer(*f.tracer);
  const std::vector<TraceSpan> migrations = query.SpansOf(TraceOp::kMigrate);
  ASSERT_EQ(migrations.size(), 1u);
  EXPECT_TRUE(migrations[0].ended);
  EXPECT_STREQ(migrations[0].detail, "ok");
  EXPECT_EQ(migrations[0].proclet, kv.id());
  EXPECT_TRUE(query.SingleCausalTree(migrations[0].trace_id));
}

TEST(TracePropagationTest, StaleEpochMigrationEndsFencedNotOk) {
  RuntimeFixture f;
  Ref<FencedKvProclet> kv = f.MakeKv(1);

  const uint64_t stale = f.rt->EpochOf(kv.id());
  ASSERT_TRUE(f.sim.BlockOn(f.rt->Migrate(kv.id(), 2, stale)).ok());
  const Status replay = f.sim.BlockOn(f.rt->Migrate(kv.id(), 3, stale));
  ASSERT_EQ(replay.code(), StatusCode::kAborted);

  TraceQuery query = TraceQuery::FromTracer(*f.tracer);
  const std::vector<TraceSpan> migrations = query.SpansOf(TraceOp::kMigrate);
  ASSERT_EQ(migrations.size(), 2u);
  EXPECT_STREQ(migrations[0].detail, "ok");
  EXPECT_STREQ(migrations[1].detail, "ABORTED");

  // The fence rejection itself is attributed: a `fence` instant carrying the
  // stale epoch and the current epoch it lost to.
  const std::vector<TraceEvent> fences = query.Instants(TraceOp::kFence);
  ASSERT_EQ(fences.size(), 1u);
  EXPECT_EQ(fences[0].proclet, kv.id());
  EXPECT_EQ(fences[0].epoch, stale);
  EXPECT_EQ(fences[0].arg, 2);  // the epoch that fenced it
  EXPECT_STREQ(fences[0].detail, "stale_epoch");
}

TEST(TracePropagationTest, StaleEpochWriteAppearsAsAbortNeverCommit) {
  RuntimeFixture f;
  Ref<FencedKvProclet> kv = f.MakeKv(1);
  Ctx ctx = f.rt->CtxOn(0);

  const uint64_t old_epoch = f.rt->EpochOf(kv.id());
  ASSERT_TRUE(f.sim.BlockOn(Put(kv, ctx, old_epoch, /*rid=*/1, 1, 10)).applied);
  ASSERT_TRUE(f.sim.BlockOn(f.rt->Migrate(kv.id(), 2)).ok());

  // A client that resolved before the migration retries with the old token.
  const FencedKvProclet::PutResult stale =
      f.sim.BlockOn(Put(kv, ctx, old_epoch, /*rid=*/2, 1, 99));
  ASSERT_TRUE(stale.fenced);

  TraceQuery query = TraceQuery::FromTracer(*f.tracer);
  const std::vector<TraceEvent> commits = query.Instants(TraceOp::kCommit);
  const std::vector<TraceEvent> aborts = query.Instants(TraceOp::kAbort);

  // Request 1 committed; request 2 aborted. No commit event may ever carry
  // the fenced request's id — fenced writes leave no commit in the record.
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_EQ(commits[0].proclet, kv.id());
  EXPECT_EQ(commits[0].arg, 1);
  bool fenced_abort_seen = false;
  for (const TraceEvent& abort : aborts) {
    EXPECT_NE(abort.arg, commits[0].arg);
    if (abort.arg == 2 && std::strcmp(abort.detail, "fenced") == 0) {
      fenced_abort_seen = true;
    }
  }
  EXPECT_TRUE(fenced_abort_seen);
  for (const TraceEvent& commit : commits) {
    EXPECT_NE(commit.arg, 2);
  }

  // The commit precedes the abort in the deterministic total order.
  EXPECT_TRUE(query.HappensBefore(commits[0], aborts.back()));
}

TEST(TracePropagationTest, InvokeSpansCarryOneTracePerCall) {
  RuntimeFixture f;
  Ref<FencedKvProclet> kv = f.MakeKv(1);
  Ctx ctx = f.rt->CtxOn(0);
  const uint64_t epoch = f.rt->EpochOf(kv.id());
  ASSERT_TRUE(f.sim.BlockOn(Put(kv, ctx, epoch, 1, 1, 10)).applied);
  ASSERT_TRUE(f.sim.BlockOn(Put(kv, ctx, epoch, 2, 2, 20)).applied);

  TraceQuery query = TraceQuery::FromTracer(*f.tracer);
  const std::vector<TraceSpan> invokes = query.SpansOf(TraceOp::kInvoke);
  ASSERT_EQ(invokes.size(), 2u);
  EXPECT_NE(invokes[0].trace_id, invokes[1].trace_id);
  for (const TraceSpan& invoke : invokes) {
    EXPECT_TRUE(invoke.ended);
    EXPECT_STREQ(invoke.detail, "ok");
    EXPECT_EQ(invoke.proclet, kv.id());
    EXPECT_TRUE(query.SingleCausalTree(invoke.trace_id));
  }
}

TEST(TracePropagationTest, TracingChangesNoSimTime) {
  auto scenario = [](RuntimeFixture& f) {
    Ref<FencedKvProclet> kv = f.MakeKv(1);
    Ctx ctx = f.rt->CtxOn(0);
    const uint64_t epoch = f.rt->EpochOf(kv.id());
    (void)f.sim.BlockOn(Put(kv, ctx, epoch, 1, 1, 10));
    (void)f.sim.BlockOn(f.rt->Migrate(kv.id(), 2));
    (void)f.sim.BlockOn(Put(kv, ctx, f.rt->EpochOf(kv.id()), 2, 2, 20));
    return f.sim.Now();
  };

  RuntimeFixture traced(4, /*traced=*/true);
  RuntimeFixture untraced(4, /*traced=*/false);
  const SimTime with = scenario(traced);
  const SimTime without = scenario(untraced);
  EXPECT_EQ(with, without);
  EXPECT_GT(traced.tracer->recorded(), 0);
}

TEST(TracePropagationTest, SameSeedRunsProduceIdenticalDigests) {
  auto run = [] {
    RuntimeFixture f;
    Ref<FencedKvProclet> kv = f.MakeKv(1);
    Ctx ctx = f.rt->CtxOn(0);
    const uint64_t epoch = f.rt->EpochOf(kv.id());
    (void)f.sim.BlockOn(Put(kv, ctx, epoch, 1, 1, 10));
    (void)f.sim.BlockOn(f.rt->Migrate(kv.id(), 2));
    return f.tracer->Digest();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace quicksand
