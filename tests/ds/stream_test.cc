#include "quicksand/ds/stream.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  Fixture() {
    MachineSpec spec;
    spec.cores = 4;
    spec.memory_bytes = 2_GiB;
    cluster.AddMachine(spec);
    cluster.AddMachine(spec);
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ctx ctx() { return rt->CtxOn(0); }

  ShardedVector<int64_t> MakeFilled(int64_t n, int64_t max_shard_bytes = 512) {
    ShardedVector<int64_t>::Options options;
    options.max_shard_bytes = max_shard_bytes;
    auto vec = *sim.BlockOn(ShardedVector<int64_t>::Create(ctx(), options));
    for (int64_t i = 0; i < n; ++i) {
      auto push = vec.PushBack(ctx(), i);
      QS_CHECK(sim.BlockOn(std::move(push)).ok());
    }
    return vec;
  }
};

Task<std::vector<int64_t>> DrainStream(VectorStream<int64_t>& stream, Ctx ctx) {
  std::vector<int64_t> out;
  for (;;) {
    auto next = stream.Next(ctx);
    std::optional<int64_t> v = co_await std::move(next);
    if (!v.has_value()) {
      break;
    }
    out.push_back(*v);
  }
  co_return out;
}

TEST(VectorStreamTest, YieldsAllElementsInOrder) {
  Fixture f;
  auto vec = f.MakeFilled(200);
  VectorStream<int64_t> stream(vec, 0, 200, 16);
  std::vector<int64_t> out = f.sim.BlockOn(DrainStream(stream, f.ctx()));
  ASSERT_EQ(out.size(), 200u);
  for (int64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
}

TEST(VectorStreamTest, RespectsSubrange) {
  Fixture f;
  auto vec = f.MakeFilled(100);
  VectorStream<int64_t> stream(vec, 20, 50, 8);
  std::vector<int64_t> out = f.sim.BlockOn(DrainStream(stream, f.ctx()));
  ASSERT_EQ(out.size(), 30u);
  EXPECT_EQ(out.front(), 20);
  EXPECT_EQ(out.back(), 49);
}

TEST(VectorStreamTest, RangePastEndStopsAtVectorEnd) {
  Fixture f;
  auto vec = f.MakeFilled(30);
  VectorStream<int64_t> stream(vec, 10, 1000, 16);
  std::vector<int64_t> out = f.sim.BlockOn(DrainStream(stream, f.ctx()));
  EXPECT_EQ(out.size(), 20u);
}

TEST(VectorStreamTest, EmptyRangeYieldsNothing) {
  Fixture f;
  auto vec = f.MakeFilled(10);
  VectorStream<int64_t> stream(vec, 5, 5, 4);
  std::vector<int64_t> out = f.sim.BlockOn(DrainStream(stream, f.ctx()));
  EXPECT_TRUE(out.empty());
}

Task<Duration> TimedDrain(Fixture& f, VectorStream<int64_t>& stream, Ctx ctx,
                          Duration per_element_work) {
  const SimTime start = f.sim.Now();
  for (;;) {
    auto next = stream.Next(ctx);
    std::optional<int64_t> v = co_await std::move(next);
    if (!v.has_value()) {
      break;
    }
    co_await f.cluster.machine(ctx.machine).cpu().Run(per_element_work);
  }
  co_return f.sim.Now() - start;
}

TEST(VectorStreamTest, PrefetchHidesRemoteFetchLatency) {
  // Data lives on machine 1; the consumer computes on machine 0. With
  // prefetching, fetches overlap compute and total time approaches pure
  // compute time; without, fetch time adds up.
  Fixture f;
  ShardedVector<int64_t>::Options options;
  options.max_shard_bytes = 64_KiB;
  auto vec = *f.sim.BlockOn(ShardedVector<int64_t>::Create(f.ctx(), options));
  for (int64_t i = 0; i < 4000; ++i) {
    QS_CHECK(f.sim.BlockOn(vec.PushBack(f.ctx(), i)).ok());
  }
  f.sim.BlockOn(vec.router().Refresh(f.ctx()));
  for (const ShardInfo& s : vec.router().cached_shards()) {
    QS_CHECK(f.sim.BlockOn(f.rt->Migrate(s.proclet, 1)).ok());
  }

  const Duration work = 50_us;  // per element
  VectorStream<int64_t> with_prefetch(vec, 0, 4000, 128, /*prefetch=*/true);
  const Duration t_prefetch =
      f.sim.BlockOn(TimedDrain(f, with_prefetch, f.rt->CtxOn(0), work));
  VectorStream<int64_t> without(vec, 0, 4000, 128, /*prefetch=*/false);
  const Duration t_sync =
      f.sim.BlockOn(TimedDrain(f, without, f.rt->CtxOn(0), work));

  EXPECT_LT(t_prefetch, t_sync);
  // Prefetching should land within ~10% of pure compute time (200ms).
  EXPECT_LT(t_prefetch, Duration::Millis(220));
  EXPECT_GT(with_prefetch.stats().prefetch_ready, 0);
}

TEST(VectorStreamTest, StatsCountChunks) {
  Fixture f;
  auto vec = f.MakeFilled(64);
  VectorStream<int64_t> stream(vec, 0, 64, 16);
  (void)f.sim.BlockOn(DrainStream(stream, f.ctx()));
  EXPECT_EQ(stream.stats().chunks_fetched, 4);
}

}  // namespace
}  // namespace quicksand
