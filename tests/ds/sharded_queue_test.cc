#include "quicksand/ds/sharded_queue.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 2) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 4;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ctx ctx() { return rt->CtxOn(0); }
};

using IntQueue = ShardedQueue<int64_t>;

Task<IntQueue> MakeQueue(Ctx ctx, IntQueue::Options options = {}) {
  auto create = IntQueue::Create(ctx, options);
  Result<IntQueue> q = co_await std::move(create);
  co_return *q;
}

Task<> PushN(IntQueue& q, Ctx ctx, int64_t n, int64_t offset = 0) {
  for (int64_t i = 0; i < n; ++i) {
    auto push = q.Push(ctx, offset + i);
    Status s = co_await std::move(push);
    EXPECT_TRUE(s.ok());
  }
}

TEST(ShardedQueueTest, FifoWithinProducer) {
  Fixture f;
  IntQueue q = f.sim.BlockOn(MakeQueue(f.ctx()));
  f.sim.BlockOn(PushN(q, f.ctx(), 10));
  for (int64_t i = 0; i < 10; ++i) {
    Result<std::optional<int64_t>> v = f.sim.BlockOn(q.TryPop(f.ctx()));
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(v->has_value());
    EXPECT_EQ(**v, i);
  }
}

TEST(ShardedQueueTest, EmptyPopReturnsNothing) {
  Fixture f;
  IntQueue q = f.sim.BlockOn(MakeQueue(f.ctx()));
  Result<std::optional<int64_t>> v = f.sim.BlockOn(q.TryPop(f.ctx()));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->has_value());
}

TEST(ShardedQueueTest, BatchPopRespectsLimit) {
  Fixture f;
  IntQueue q = f.sim.BlockOn(MakeQueue(f.ctx()));
  f.sim.BlockOn(PushN(q, f.ctx(), 20));
  Result<std::vector<int64_t>> batch = f.sim.BlockOn(q.TryPopBatch(f.ctx(), 7));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 7u);
  EXPECT_EQ((*batch)[0], 0);
  EXPECT_EQ(*f.sim.BlockOn(q.Size(f.ctx())), 13);
}

TEST(ShardedQueueTest, BurstCreatesSegments) {
  Fixture f;
  IntQueue::Options options;
  options.max_segment_bytes = 256;  // 32 ints per segment
  IntQueue q = f.sim.BlockOn(MakeQueue(f.ctx(), options));
  f.sim.BlockOn(PushN(q, f.ctx(), 200));
  f.sim.BlockOn(q.router().Refresh(f.ctx()));
  EXPECT_GE(q.router().cached_shards().size(), 5u);
  EXPECT_EQ(*f.sim.BlockOn(q.Size(f.ctx())), 200);
}

TEST(ShardedQueueTest, DrainedSegmentsAreReclaimed) {
  Fixture f;
  IntQueue::Options options;
  options.max_segment_bytes = 256;
  IntQueue q = f.sim.BlockOn(MakeQueue(f.ctx(), options));
  f.sim.BlockOn(PushN(q, f.ctx(), 200));
  const size_t proclets_full = f.rt->proclet_count();
  // Drain fully.
  int64_t seen = 0;
  while (true) {
    Result<std::vector<int64_t>> batch = f.sim.BlockOn(q.TryPopBatch(f.ctx(), 64));
    ASSERT_TRUE(batch.ok());
    if (batch->empty()) {
      break;
    }
    seen += static_cast<int64_t>(batch->size());
  }
  EXPECT_EQ(seen, 200);
  f.sim.RunUntilIdle();
  EXPECT_LT(f.rt->proclet_count(), proclets_full);  // segments destroyed
}

TEST(ShardedQueueTest, OrderPreservedAcrossSegments) {
  Fixture f;
  IntQueue::Options options;
  options.max_segment_bytes = 128;
  IntQueue q = f.sim.BlockOn(MakeQueue(f.ctx(), options));
  f.sim.BlockOn(PushN(q, f.ctx(), 100));
  int64_t expected = 0;
  while (true) {
    Result<std::optional<int64_t>> v = f.sim.BlockOn(q.TryPop(f.ctx()));
    ASSERT_TRUE(v.ok());
    if (!v->has_value()) {
      break;
    }
    EXPECT_EQ(**v, expected++);
  }
  EXPECT_EQ(expected, 100);
}

Task<> Producer(IntQueue q, Ctx ctx, Simulator& sim, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    auto push = q.Push(ctx, i);
    Status s = co_await std::move(push);
    EXPECT_TRUE(s.ok());
    co_await sim.Sleep(10_us);
  }
}

Task<> Consumer(IntQueue q, Ctx ctx, Simulator& sim, int64_t expect,
                std::vector<int64_t>& out) {
  while (static_cast<int64_t>(out.size()) < expect) {
    auto pop = q.TryPopBatch(ctx, 16);
    Result<std::vector<int64_t>> batch = co_await std::move(pop);
    EXPECT_TRUE(batch.ok());
    if (!batch.ok()) {
      co_return;
    }
    for (int64_t v : *batch) {
      out.push_back(v);
    }
    if (batch->empty()) {
      co_await sim.Sleep(50_us);
    }
  }
}

TEST(ShardedQueueTest, ConcurrentProducerConsumer) {
  Fixture f;
  IntQueue::Options options;
  options.max_segment_bytes = 512;
  IntQueue q = f.sim.BlockOn(MakeQueue(f.ctx(), options));
  std::vector<int64_t> out;
  f.sim.Spawn(Producer(q, f.rt->CtxOn(0), f.sim, 300), "producer");
  Fiber consumer = f.sim.Spawn(Consumer(q, f.rt->CtxOn(1), f.sim, 300, out), "consumer");
  f.sim.RunUntilIdle();
  EXPECT_TRUE(consumer.done());
  ASSERT_EQ(out.size(), 300u);
  for (int64_t i = 0; i < 300; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
}

TEST(ShardedQueueTest, SegmentsCanMigrateMidstream) {
  Fixture f;
  IntQueue::Options options;
  options.max_segment_bytes = 256;
  IntQueue q = f.sim.BlockOn(MakeQueue(f.ctx(), options));
  f.sim.BlockOn(PushN(q, f.ctx(), 100));
  f.sim.BlockOn(q.router().Refresh(f.ctx()));
  for (const ShardInfo& s : q.router().cached_shards()) {
    EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(s.proclet, 1)).ok());
  }
  int64_t expected = 0;
  while (true) {
    Result<std::optional<int64_t>> v = f.sim.BlockOn(q.TryPop(f.ctx()));
    ASSERT_TRUE(v.ok());
    if (!v->has_value()) {
      break;
    }
    EXPECT_EQ(**v, expected++);
  }
  EXPECT_EQ(expected, 100);
}

}  // namespace
}  // namespace quicksand
