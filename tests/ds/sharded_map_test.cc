#include "quicksand/ds/sharded_map.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 2) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 4;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ctx ctx() { return rt->CtxOn(0); }
};

using StrMap = ShardedMap<std::string, int64_t>;

Task<StrMap> MakeMap(Ctx ctx, StrMap::Options options = {}) {
  auto create = StrMap::Create(ctx, options);
  Result<StrMap> map = co_await std::move(create);
  co_return *map;
}

TEST(ShardedMapTest, PutGetRoundTrip) {
  Fixture f;
  StrMap map = f.sim.BlockOn(MakeMap(f.ctx()));
  EXPECT_TRUE(f.sim.BlockOn(map.Put(f.ctx(), "alpha", 1)).ok());
  EXPECT_TRUE(f.sim.BlockOn(map.Put(f.ctx(), "beta", 2)).ok());
  EXPECT_EQ(*f.sim.BlockOn(map.Get(f.ctx(), "alpha")), 1);
  EXPECT_EQ(*f.sim.BlockOn(map.Get(f.ctx(), "beta")), 2);
}

TEST(ShardedMapTest, GetMissingIsNotFound) {
  Fixture f;
  StrMap map = f.sim.BlockOn(MakeMap(f.ctx()));
  EXPECT_EQ(f.sim.BlockOn(map.Get(f.ctx(), "ghost")).status().code(),
            StatusCode::kNotFound);
}

TEST(ShardedMapTest, PutOverwritesValue) {
  Fixture f;
  StrMap map = f.sim.BlockOn(MakeMap(f.ctx()));
  EXPECT_TRUE(f.sim.BlockOn(map.Put(f.ctx(), "k", 1)).ok());
  EXPECT_TRUE(f.sim.BlockOn(map.Put(f.ctx(), "k", 2)).ok());
  EXPECT_EQ(*f.sim.BlockOn(map.Get(f.ctx(), "k")), 2);
  EXPECT_EQ(*f.sim.BlockOn(map.Size(f.ctx())), 1);
}

TEST(ShardedMapTest, EraseRemovesKey) {
  Fixture f;
  StrMap map = f.sim.BlockOn(MakeMap(f.ctx()));
  EXPECT_TRUE(f.sim.BlockOn(map.Put(f.ctx(), "k", 1)).ok());
  EXPECT_TRUE(f.sim.BlockOn(map.Erase(f.ctx(), "k")).ok());
  EXPECT_EQ(f.sim.BlockOn(map.Get(f.ctx(), "k")).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(f.sim.BlockOn(map.Erase(f.ctx(), "k")).code(), StatusCode::kNotFound);
}

TEST(ShardedMapTest, ContainsReflectsMembership) {
  Fixture f;
  StrMap map = f.sim.BlockOn(MakeMap(f.ctx()));
  EXPECT_TRUE(f.sim.BlockOn(map.Put(f.ctx(), "x", 5)).ok());
  EXPECT_TRUE(*f.sim.BlockOn(map.Contains(f.ctx(), "x")));
  EXPECT_FALSE(*f.sim.BlockOn(map.Contains(f.ctx(), "y")));
}

TEST(ShardedMapTest, SizeAndItemsAcrossManyKeys) {
  Fixture f;
  StrMap map = f.sim.BlockOn(MakeMap(f.ctx()));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(map.Put(f.ctx(), "key" + std::to_string(i), i)).ok());
  }
  EXPECT_EQ(*f.sim.BlockOn(map.Size(f.ctx())), 100);
  Result<std::vector<std::pair<std::string, int64_t>>> items =
      f.sim.BlockOn(map.Items(f.ctx()));
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(items->size(), 100u);
  int64_t sum = 0;
  for (const auto& [k, v] : *items) {
    sum += v;
  }
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ShardedMapTest, HeapAccountingFollowsEntries) {
  Fixture f;
  StrMap map = f.sim.BlockOn(MakeMap(f.ctx()));
  const int64_t before = f.cluster.machine(0).memory().used() +
                         f.cluster.machine(1).memory().used();
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(
        f.sim.BlockOn(map.Put(f.ctx(), "key" + std::to_string(i), i)).ok());
  }
  const int64_t mid = f.cluster.machine(0).memory().used() +
                      f.cluster.machine(1).memory().used();
  EXPECT_GT(mid, before);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(map.Erase(f.ctx(), "key" + std::to_string(i))).ok());
  }
  const int64_t after = f.cluster.machine(0).memory().used() +
                        f.cluster.machine(1).memory().used();
  EXPECT_EQ(after, before);
}

TEST(ShardedMapTest, IntKeysWork) {
  Fixture f;
  auto map = *f.sim.BlockOn(ShardedMap<int64_t, std::string>::Create(f.ctx()));
  EXPECT_TRUE(f.sim.BlockOn(map.Put(f.ctx(), 42, std::string("answer"))).ok());
  EXPECT_EQ(*f.sim.BlockOn(map.Get(f.ctx(), 42)), "answer");
}

TEST(ShardedMapTest, EntriesSurviveShardMigration) {
  Fixture f;
  StrMap map = f.sim.BlockOn(MakeMap(f.ctx()));
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(map.Put(f.ctx(), "k" + std::to_string(i), i)).ok());
  }
  f.sim.BlockOn(map.router().Refresh(f.ctx()));
  for (const ShardInfo& s : map.router().cached_shards()) {
    EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(s.proclet, 1)).ok());
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(*f.sim.BlockOn(map.Get(f.ctx(), "k" + std::to_string(i))), i);
  }
}

TEST(ShardedSetTest, InsertContainsErase) {
  Fixture f;
  auto set = *f.sim.BlockOn(ShardedSet<std::string>::Create(f.ctx()));
  EXPECT_TRUE(f.sim.BlockOn(set.Insert(f.ctx(), "a")).ok());
  EXPECT_TRUE(f.sim.BlockOn(set.Insert(f.ctx(), "b")).ok());
  EXPECT_TRUE(*f.sim.BlockOn(set.Contains(f.ctx(), "a")));
  EXPECT_FALSE(*f.sim.BlockOn(set.Contains(f.ctx(), "c")));
  EXPECT_EQ(*f.sim.BlockOn(set.Size(f.ctx())), 2);
  EXPECT_TRUE(f.sim.BlockOn(set.Erase(f.ctx(), "a")).ok());
  EXPECT_FALSE(*f.sim.BlockOn(set.Contains(f.ctx(), "a")));
}

}  // namespace
}  // namespace quicksand
