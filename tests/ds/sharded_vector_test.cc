#include "quicksand/ds/sharded_vector.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 2, int64_t mem = 2_GiB) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 4;
      spec.memory_bytes = mem;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ctx ctx() { return rt->CtxOn(0); }
};

using IntVector = ShardedVector<int64_t>;

Task<IntVector> MakeVector(Ctx ctx, IntVector::Options options = {}) {
  auto create = IntVector::Create(ctx, options);
  Result<IntVector> vec = co_await std::move(create);
  co_return *vec;
}

Task<> PushN(IntVector& vec, Ctx ctx, int64_t n, int64_t offset = 0) {
  for (int64_t i = 0; i < n; ++i) {
    auto push = vec.PushBack(ctx, offset + i);
    Result<uint64_t> idx = co_await std::move(push);
    EXPECT_TRUE(idx.ok());
  }
}

TEST(ShardedVectorTest, PushBackAssignsDenseIndices) {
  Fixture f;
  IntVector vec = f.sim.BlockOn(MakeVector(f.ctx()));
  for (int64_t i = 0; i < 10; ++i) {
    Result<uint64_t> idx = f.sim.BlockOn(vec.PushBack(f.ctx(), i * 100));
    ASSERT_TRUE(idx.ok());
    EXPECT_EQ(*idx, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(*f.sim.BlockOn(vec.Size(f.ctx())), 10u);
}

TEST(ShardedVectorTest, GetReturnsPushedValues) {
  Fixture f;
  IntVector vec = f.sim.BlockOn(MakeVector(f.ctx()));
  f.sim.BlockOn(PushN(vec, f.ctx(), 100));
  for (uint64_t i = 0; i < 100; i += 7) {
    Result<int64_t> v = f.sim.BlockOn(vec.Get(f.ctx(), i));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, static_cast<int64_t>(i));
  }
}

TEST(ShardedVectorTest, GetPastEndIsOutOfRange) {
  Fixture f;
  IntVector vec = f.sim.BlockOn(MakeVector(f.ctx()));
  f.sim.BlockOn(PushN(vec, f.ctx(), 5));
  EXPECT_EQ(f.sim.BlockOn(vec.Get(f.ctx(), 5)).status().code(),
            StatusCode::kOutOfRange);
}

TEST(ShardedVectorTest, SetOverwrites) {
  Fixture f;
  IntVector vec = f.sim.BlockOn(MakeVector(f.ctx()));
  f.sim.BlockOn(PushN(vec, f.ctx(), 10));
  EXPECT_TRUE(f.sim.BlockOn(vec.Set(f.ctx(), 3, 999)).ok());
  EXPECT_EQ(*f.sim.BlockOn(vec.Get(f.ctx(), 3)), 999);
}

TEST(ShardedVectorTest, GrowsIntoMultipleShards) {
  Fixture f;
  IntVector::Options options;
  options.max_shard_bytes = 256;  // 32 int64s per shard
  IntVector vec = f.sim.BlockOn(MakeVector(f.ctx(), options));
  f.sim.BlockOn(PushN(vec, f.ctx(), 200));
  f.sim.BlockOn(vec.router().Refresh(f.ctx()));
  EXPECT_GE(vec.router().cached_shards().size(), 5u);
  // All elements still addressable.
  for (uint64_t i = 0; i < 200; i += 13) {
    EXPECT_EQ(*f.sim.BlockOn(vec.Get(f.ctx(), i)), static_cast<int64_t>(i));
  }
  EXPECT_EQ(*f.sim.BlockOn(vec.Size(f.ctx())), 200u);
}

TEST(ShardedVectorTest, ShardsSpreadAcrossMachines) {
  Fixture f(4);
  IntVector::Options options;
  options.max_shard_bytes = 256;
  IntVector vec = f.sim.BlockOn(MakeVector(f.ctx(), options));
  f.sim.BlockOn(PushN(vec, f.ctx(), 500));
  // Best-fit placement should not leave everything on one machine.
  std::set<MachineId> used;
  f.sim.BlockOn(vec.router().Refresh(f.ctx()));
  for (const ShardInfo& s : vec.router().cached_shards()) {
    used.insert(f.rt->LocationOf(s.proclet));
  }
  EXPECT_GE(used.size(), 2u);
}

TEST(ShardedVectorTest, GetRangeSpansShards) {
  Fixture f;
  IntVector::Options options;
  options.max_shard_bytes = 256;
  IntVector vec = f.sim.BlockOn(MakeVector(f.ctx(), options));
  f.sim.BlockOn(PushN(vec, f.ctx(), 100));
  Result<std::vector<int64_t>> range = f.sim.BlockOn(vec.GetRange(f.ctx(), 10, 80));
  ASSERT_TRUE(range.ok());
  ASSERT_EQ(range->size(), 80u);
  for (size_t i = 0; i < 80; ++i) {
    EXPECT_EQ((*range)[i], static_cast<int64_t>(10 + i));
  }
}

TEST(ShardedVectorTest, GetRangeClampsAtEnd) {
  Fixture f;
  IntVector vec = f.sim.BlockOn(MakeVector(f.ctx()));
  f.sim.BlockOn(PushN(vec, f.ctx(), 20));
  Result<std::vector<int64_t>> range = f.sim.BlockOn(vec.GetRange(f.ctx(), 15, 100));
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 5u);
}

TEST(ShardedVectorTest, ElementsSurviveShardMigration) {
  Fixture f;
  IntVector::Options options;
  options.max_shard_bytes = 256;
  IntVector vec = f.sim.BlockOn(MakeVector(f.ctx(), options));
  f.sim.BlockOn(PushN(vec, f.ctx(), 100));
  // Migrate every shard to machine 1.
  f.sim.BlockOn(vec.router().Refresh(f.ctx()));
  for (const ShardInfo& s : vec.router().cached_shards()) {
    EXPECT_TRUE(f.sim.BlockOn(f.rt->Migrate(s.proclet, 1)).ok());
  }
  for (uint64_t i = 0; i < 100; i += 9) {
    EXPECT_EQ(*f.sim.BlockOn(vec.Get(f.ctx(), i)), static_cast<int64_t>(i));
  }
}

Task<> ConcurrentPusher(IntVector vec, Ctx ctx, int64_t n, std::vector<uint64_t>& got) {
  for (int64_t i = 0; i < n; ++i) {
    auto push = vec.PushBack(ctx, i);
    Result<uint64_t> idx = co_await std::move(push);
    EXPECT_TRUE(idx.ok());
    if (idx.ok()) {
      got.push_back(*idx);
    }
  }
}

TEST(ShardedVectorTest, ConcurrentPushersGetUniqueIndices) {
  Fixture f;
  IntVector::Options options;
  options.max_shard_bytes = 512;
  IntVector vec = f.sim.BlockOn(MakeVector(f.ctx(), options));
  std::vector<uint64_t> a;
  std::vector<uint64_t> b;
  // Two pushers share the same handle copy semantics (each gets a copy).
  Fiber fa = f.sim.Spawn(ConcurrentPusher(vec, f.rt->CtxOn(0), 100, a), "pa");
  Fiber fb = f.sim.Spawn(ConcurrentPusher(vec, f.rt->CtxOn(1), 100, b), "pb");
  f.sim.RunUntilIdle();
  EXPECT_TRUE(fa.done() && fb.done());
  std::set<uint64_t> all(a.begin(), a.end());
  all.insert(b.begin(), b.end());
  EXPECT_EQ(all.size(), 200u);  // no duplicates
  EXPECT_EQ(*f.sim.BlockOn(vec.Size(f.ctx())), 200u);
}

TEST(ShardedVectorTest, StringPayloads) {
  Fixture f;
  ShardedVector<std::string>::Options options;
  options.max_shard_bytes = 4096;
  auto vec = *f.sim.BlockOn(ShardedVector<std::string>::Create(f.ctx(), options));
  for (int i = 0; i < 50; ++i) {
    auto push = vec.PushBack(f.ctx(), std::string(100, static_cast<char>('a' + i % 26)));
    ASSERT_TRUE(f.sim.BlockOn(std::move(push)).ok());
  }
  Result<std::string> v = f.sim.BlockOn(vec.Get(f.ctx(), 26));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, std::string(100, 'a'));
}

}  // namespace
}  // namespace quicksand
