#include "quicksand/overload/retry_budget.h"

#include <gtest/gtest.h>

namespace quicksand {
namespace {

TEST(RetryBudgetTest, StartsFullAndGrantsACapacityBurst) {
  RetryBudgetOptions opt;
  opt.ratio = 0.1;
  opt.capacity = 3.0;
  RetryBudget b(opt);
  EXPECT_DOUBLE_EQ(b.tokens(), 3.0);
  EXPECT_TRUE(b.TryAcquireRetry());
  EXPECT_TRUE(b.TryAcquireRetry());
  EXPECT_TRUE(b.TryAcquireRetry());
  EXPECT_FALSE(b.TryAcquireRetry());  // bucket drained
  EXPECT_EQ(b.granted(), 3);
  EXPECT_EQ(b.denied(), 1);
}

TEST(RetryBudgetTest, AttemptsAccrueAtRatio) {
  // ratio = 0.25 is exact in binary, so "four attempts fund one retry"
  // holds without floating-point slop.
  RetryBudgetOptions opt;
  opt.ratio = 0.25;
  opt.capacity = 5.0;
  RetryBudget b(opt);
  while (b.TryAcquireRetry()) {
  }
  EXPECT_LT(b.tokens(), 1.0);
  for (int i = 0; i < 3; ++i) {
    b.OnAttempt();
    EXPECT_FALSE(b.TryAcquireRetry());
  }
  b.OnAttempt();
  EXPECT_TRUE(b.TryAcquireRetry());
  EXPECT_EQ(b.attempts(), 4);
}

TEST(RetryBudgetTest, AccrualSaturatesAtCapacity) {
  RetryBudgetOptions opt;
  opt.ratio = 1.0;
  opt.capacity = 2.0;
  RetryBudget b(opt);
  for (int i = 0; i < 100; ++i) {
    b.OnAttempt();
  }
  EXPECT_DOUBLE_EQ(b.tokens(), 2.0);
  EXPECT_TRUE(b.TryAcquireRetry());
  EXPECT_TRUE(b.TryAcquireRetry());
  EXPECT_FALSE(b.TryAcquireRetry());
}

TEST(RetryBudgetTest, SteadyStateRetryRateIsBoundedByRatio) {
  // Under permanent overload (every attempt wants a retry), granted retries
  // can never exceed ratio * attempts + the initial capacity burst.
  RetryBudgetOptions opt;
  opt.ratio = 0.1;
  opt.capacity = 10.0;
  RetryBudget b(opt);
  const int kAttempts = 10000;
  for (int i = 0; i < kAttempts; ++i) {
    b.OnAttempt();
    (void)b.TryAcquireRetry();
  }
  EXPECT_LE(static_cast<double>(b.granted()),
            opt.ratio * kAttempts + opt.capacity + 1.0);
  EXPECT_GT(b.denied(), 0);
}

}  // namespace
}  // namespace quicksand
