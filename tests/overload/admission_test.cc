#include "quicksand/overload/admission.h"

#include <gtest/gtest.h>

#include "quicksand/cluster/cluster.h"
#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};

  explicit Fixture(int machines = 1, int cores = 1) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = cores;
      spec.memory_bytes = 1_GiB;
      cluster.AddMachine(spec);
    }
  }

  // Queue `count` requests of `work` each at normal priority on machine 0.
  // With one core, all but the running one wait — a standing queue.
  void Flood(int count, Duration work) {
    for (int i = 0; i < count; ++i) {
      sim.Spawn(cluster.machine(0).cpu().Run(work, kPriorityNormal),
                "flood_" + std::to_string(i));
    }
  }
};

AdmissionOptions TightOptions() {
  AdmissionOptions opt;
  opt.target = Duration::Micros(20);
  opt.interval = Duration::Micros(200);
  return opt;
}

TEST(AdmissionControllerTest, IdleMachineAdmitsEverything) {
  Fixture f;
  AdmissionController adm(f.cluster, TightOptions());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(adm.Admit(0, f.sim.Now()));
  }
  EXPECT_EQ(adm.sheds(), 0);
  EXPECT_FALSE(adm.Overloaded(0));
}

TEST(AdmissionControllerTest, BurstRidesThroughTheGraceInterval) {
  Fixture f;
  AdmissionController adm(f.cluster, TightOptions());
  f.Flood(50, Duration::Millis(1));
  f.sim.RunFor(Duration::Micros(100));
  // Delay is above target (oldest waiter is ~100us old) but has not stood
  // for a full interval yet: still admitting.
  EXPECT_GT(adm.DelayOf(0), TightOptions().target);
  EXPECT_TRUE(adm.Admit(0, f.sim.Now()));
  EXPECT_FALSE(adm.Overloaded(0));
  EXPECT_EQ(adm.sheds(), 0);
}

TEST(AdmissionControllerTest, StandingQueueEntersSheddingAfterInterval) {
  Fixture f;
  AdmissionController adm(f.cluster, TightOptions());
  f.Flood(50, Duration::Millis(1));
  f.sim.RunFor(Duration::Micros(100));
  ASSERT_TRUE(adm.Admit(0, f.sim.Now()));  // starts the grace clock
  f.sim.RunFor(Duration::Micros(300));     // > interval with the queue standing
  EXPECT_FALSE(adm.Admit(0, f.sim.Now()));
  EXPECT_TRUE(adm.Overloaded(0));
  EXPECT_EQ(adm.sheds(), 1);
}

TEST(AdmissionControllerTest, ProbesEscapeTheSheddingState) {
  Fixture f;
  AdmissionController adm(f.cluster, TightOptions());
  f.Flood(50, Duration::Millis(1));
  f.sim.RunFor(Duration::Micros(100));
  ASSERT_TRUE(adm.Admit(0, f.sim.Now()));
  f.sim.RunFor(Duration::Micros(300));
  ASSERT_FALSE(adm.Admit(0, f.sim.Now()));  // shedding; next_probe armed

  // Before the probe deadline every arrival is shed; at/after it, exactly
  // one is admitted as a probe, then shedding resumes.
  EXPECT_FALSE(adm.Admit(0, f.sim.Now()));
  f.sim.RunFor(Duration::Micros(250));  // past next_probe (interval = 200us)
  EXPECT_TRUE(adm.Admit(0, f.sim.Now()));
  EXPECT_EQ(adm.probes(), 1);
  EXPECT_FALSE(adm.Admit(0, f.sim.Now()));
}

TEST(AdmissionControllerTest, ProbeCadenceFollowsProbeCountNotShedCount) {
  // The control law spaces probe k by interval/sqrt(k) after probe k-1. A
  // huge number of sheds between probes must NOT accelerate the cadence —
  // otherwise high offered load turns the probe stream into a second admit
  // path. With 3 probes taken, the next is at least interval/sqrt(4) away.
  Fixture f;
  AdmissionController adm(f.cluster, TightOptions());
  f.Flood(200, Duration::Millis(1));
  f.sim.RunFor(Duration::Micros(100));
  ASSERT_TRUE(adm.Admit(0, f.sim.Now()));
  f.sim.RunFor(Duration::Micros(300));
  ASSERT_FALSE(adm.Admit(0, f.sim.Now()));  // enter shedding

  // Take three probes, hammering Admit between them (thousands of sheds).
  for (int probe = 0; probe < 3; ++probe) {
    f.sim.RunFor(Duration::Micros(250));
    ASSERT_TRUE(adm.Admit(0, f.sim.Now())) << "probe " << probe;
    for (int i = 0; i < 1000; ++i) {
      ASSERT_FALSE(adm.Admit(0, f.sim.Now()));
    }
  }
  EXPECT_EQ(adm.probes(), 3);
  const int64_t sheds_before = adm.sheds();
  // interval/sqrt(3) ~= 115us: an arrival 50us after the third probe must
  // still be shed, no matter how many sheds have accumulated.
  f.sim.RunFor(Duration::Micros(50));
  EXPECT_FALSE(adm.Admit(0, f.sim.Now()));
  EXPECT_EQ(adm.sheds(), sheds_before + 1);
  EXPECT_EQ(adm.probes(), 3);
}

TEST(AdmissionControllerTest, DrainedQueueResetsTheControllerEntirely) {
  Fixture f;
  AdmissionController adm(f.cluster, TightOptions());
  f.Flood(20, Duration::Millis(1));
  f.sim.RunFor(Duration::Micros(100));
  ASSERT_TRUE(adm.Admit(0, f.sim.Now()));
  f.sim.RunFor(Duration::Micros(300));
  ASSERT_FALSE(adm.Admit(0, f.sim.Now()));
  ASSERT_TRUE(adm.Overloaded(0));

  // Drain the queue, then feed the EWMA a few instantly-served requests so
  // the history-based half of the delay signal decays below target.
  f.sim.RunFor(Duration::Millis(25));
  for (int i = 0; i < 200 && adm.DelayOf(0) > TightOptions().target; ++i) {
    f.sim.Spawn(f.cluster.machine(0).cpu().Run(Duration::Nanos(100),
                                               kPriorityNormal),
                "drain_probe_" + std::to_string(i));
    f.sim.RunFor(Duration::Millis(1));
  }
  ASSERT_LE(adm.DelayOf(0), TightOptions().target);
  EXPECT_TRUE(adm.Admit(0, f.sim.Now()));
  EXPECT_FALSE(adm.Overloaded(0));
  // Fully reset: a fresh overload gets a fresh grace interval.
  f.Flood(20, Duration::Millis(1));
  f.sim.RunFor(Duration::Micros(100));
  EXPECT_TRUE(adm.Admit(0, f.sim.Now()));
  EXPECT_EQ(adm.sheds(), 1);  // the cumulative counter survives the reset
}

TEST(AdmissionControllerTest, PressureOfExposesDelayAndShedState) {
  Fixture f(2, 1);
  AdmissionController adm(f.cluster, TightOptions());
  // Idle machine: no queueing delay, not shedding.
  AdmissionController::PressureSample idle = adm.PressureOf(1);
  EXPECT_EQ(idle.queueing_delay, Duration::Zero());
  EXPECT_FALSE(idle.shedding);
  EXPECT_EQ(idle.sheds_in_state, 0);

  f.Flood(50, Duration::Millis(1));
  f.sim.RunFor(Duration::Micros(100));
  ASSERT_TRUE(adm.Admit(0, f.sim.Now()));
  f.sim.RunFor(Duration::Micros(300));
  ASSERT_FALSE(adm.Admit(0, f.sim.Now()));  // now shedding
  ASSERT_FALSE(adm.Admit(0, f.sim.Now()));

  const AdmissionController::PressureSample hot = adm.PressureOf(0);
  EXPECT_TRUE(hot.shedding);
  EXPECT_GT(hot.queueing_delay, Duration::Zero());
  EXPECT_EQ(hot.queueing_delay, adm.DelayOf(0));
  EXPECT_EQ(hot.sheds_in_state, 2);
  // The other machine is still untouched.
  EXPECT_FALSE(adm.PressureOf(1).shedding);
}

TEST(AdmissionControllerTest, StateIsPerMachine) {
  Fixture f(2, 1);
  AdmissionController adm(f.cluster, TightOptions());
  f.Flood(50, Duration::Millis(1));  // machine 0 only
  f.sim.RunFor(Duration::Micros(100));
  ASSERT_TRUE(adm.Admit(0, f.sim.Now()));
  f.sim.RunFor(Duration::Micros(300));
  EXPECT_FALSE(adm.Admit(0, f.sim.Now()));
  EXPECT_TRUE(adm.Overloaded(0));
  EXPECT_TRUE(adm.Admit(1, f.sim.Now()));  // idle machine unaffected
  EXPECT_FALSE(adm.Overloaded(1));
}

}  // namespace
}  // namespace quicksand
