// Heartbeat failure detection: silence — not an oracle — is the only crash
// signal. Grading must suspect on a gap, confirm on a longer gap, exonerate
// on a late heartbeat (false suspicion), and never readmit a confirmed-dead
// machine even when its heartbeats resume (posthumous).

#include "quicksand/health/failure_detector.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "quicksand/cluster/cluster.h"
#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

constexpr int kMachines = 3;

FailureDetectorOptions FastOptions() {
  FailureDetectorOptions opt;
  opt.controller = 0;
  opt.heartbeat_period = Duration::Millis(1);
  opt.suspect_after = Duration::Millis(3);
  opt.confirm_after = Duration::Millis(8);
  opt.check_period = Duration::Micros(500);
  return opt;
}

struct Harness {
  Simulator sim;
  Cluster cluster{sim};
  Harness() {
    for (int i = 0; i < kMachines; ++i) {
      cluster.AddMachine(MachineSpec{});
    }
  }
};

TEST(FailureDetectorTest, HealthyClusterStaysAlive) {
  Harness h;
  FailureDetector detector(h.sim, h.cluster, FastOptions());
  detector.Start();
  h.sim.RunFor(Duration::Millis(50));
  detector.Stop();

  EXPECT_EQ(detector.suspicions(), 0);
  EXPECT_EQ(detector.confirmations(), 0);
  for (MachineId m = 1; m < kMachines; ++m) {
    EXPECT_EQ(detector.StateOf(m), Health::kAlive);
    EXPECT_TRUE(h.cluster.machine(m).accepting());
  }
  EXPECT_GT(detector.heartbeats_delivered(), 0);
}

TEST(FailureDetectorTest, CrashIsSuspectedThenConfirmed) {
  Harness h;
  FaultInjector faults(h.sim, h.cluster);
  FailureDetector detector(h.sim, h.cluster, FastOptions());
  std::vector<MachineId> suspected, confirmed;
  SimTime confirmed_at;
  detector.OnSuspect([&](MachineId m) { suspected.push_back(m); });
  detector.OnConfirm([&](MachineId m) {
    confirmed.push_back(m);
    confirmed_at = h.sim.Now();
  });
  detector.Start();

  faults.ScheduleCrash(SimTime::Zero() + Duration::Millis(10), 2);
  h.sim.RunFor(Duration::Millis(40));
  detector.Stop();

  ASSERT_EQ(suspected.size(), 1u);
  EXPECT_EQ(suspected[0], 2u);
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0], 2u);
  EXPECT_EQ(detector.StateOf(2), Health::kDead);
  EXPECT_TRUE(detector.ConfirmedDead(2));
  EXPECT_EQ(detector.StateOf(1), Health::kAlive);
  EXPECT_EQ(detector.false_suspicions(), 0);
  // Detection latency ~ confirm_after, measured from the LAST heartbeat
  // (up to one period before the crash), plus one check period.
  const Duration latency = confirmed_at - (SimTime::Zero() + Duration::Millis(10));
  EXPECT_GT(latency, Duration::Millis(6));
  EXPECT_LT(latency, Duration::Millis(10));
}

TEST(FailureDetectorTest, TransientPartitionIsAFalseSuspicion) {
  Harness h;
  FaultInjector faults(h.sim, h.cluster);
  FailureDetector detector(h.sim, h.cluster, FastOptions());
  std::vector<MachineId> cleared;
  detector.OnClear([&](MachineId m) { cleared.push_back(m); });
  detector.Start();

  // Cut m1 -> controller for 5ms: longer than suspect_after, shorter than
  // confirm_after. The machine must be suspected (and stop accepting work),
  // then exonerated when heartbeats resume.
  faults.SchedulePartitionOneWay(SimTime::Zero() + Duration::Millis(5), 1, 0,
                                 Duration::Millis(5));
  h.sim.RunFor(Duration::Millis(9));
  EXPECT_EQ(detector.StateOf(1), Health::kSuspected);
  EXPECT_FALSE(h.cluster.machine(1).accepting());

  h.sim.RunFor(Duration::Millis(21));
  detector.Stop();

  EXPECT_EQ(detector.StateOf(1), Health::kAlive);
  EXPECT_TRUE(h.cluster.machine(1).accepting());
  EXPECT_EQ(detector.suspicions(), 1);
  EXPECT_EQ(detector.false_suspicions(), 1);
  EXPECT_EQ(detector.confirmations(), 0);
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_EQ(cleared[0], 1u);
  EXPECT_GT(h.cluster.fabric().dropped_transfers(), 0);
}

TEST(FailureDetectorTest, GrayFailureIsConfirmedAndNeverReadmitted) {
  Harness h;
  FaultInjector faults(h.sim, h.cluster);
  FailureDetector detector(h.sim, h.cluster, FastOptions());
  detector.Start();

  // Isolate m2 for 20ms — well past confirm_after — then heal. The machine
  // never crashed, but the controller must declare it dead and stay firm
  // when its late heartbeats arrive after the heal.
  faults.ScheduleIsolation(SimTime::Zero() + Duration::Millis(5), 2,
                           Duration::Millis(20));
  h.sim.RunFor(Duration::Millis(60));
  detector.Stop();

  EXPECT_EQ(detector.StateOf(2), Health::kDead);
  EXPECT_FALSE(h.cluster.machine(2).failed());  // alive, just written off
  EXPECT_EQ(detector.confirmations(), 1);
  EXPECT_GT(detector.posthumous_heartbeats(), 0);
  EXPECT_EQ(detector.StateOf(1), Health::kAlive);
}

TEST(FailureDetectorTest, SameSeedRunsAreBitIdentical) {
  auto run = [] {
    Harness h;
    FaultInjector faults(h.sim, h.cluster);
    FailureDetector detector(h.sim, h.cluster, FastOptions());
    detector.Start();
    faults.SchedulePartitionOneWay(SimTime::Zero() + Duration::Millis(4), 1, 0,
                                   Duration::Millis(5));
    faults.ScheduleIsolation(SimTime::Zero() + Duration::Millis(15), 2,
                             Duration::Millis(20));
    h.sim.RunFor(Duration::Millis(60));
    detector.Stop();
    std::ostringstream digest;
    digest << detector.suspicions() << '|' << detector.false_suspicions()
           << '|' << detector.confirmations() << '|'
           << detector.heartbeats_sent() << '|'
           << detector.heartbeats_delivered() << '|'
           << detector.posthumous_heartbeats() << '|'
           << h.cluster.fabric().dropped_transfers() << '|'
           << h.sim.Now().nanos();
    return digest.str();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_FALSE(first.empty());
}

}  // namespace
}  // namespace quicksand
