// Unit coverage for the durability subsystem: checkpoint/restore roundtrip,
// incremental checkpoint accounting, backup promotion healing DistPtrs,
// AwaitRestore's bounded stall, and DistPool lineage dedup.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "quicksand/adapt/checkpoint_tuner.h"
#include "quicksand/adapt/controller.h"
#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/compute/dist_pool.h"
#include "quicksand/durability/checkpoint_manager.h"
#include "quicksand/durability/recovery_coordinator.h"
#include "quicksand/durability/replication.h"
#include "quicksand/proclet/memory_proclet.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;
  std::unique_ptr<FaultInjector> faults;

  explicit Fixture(int machines = 4) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.memory_bytes = 2 * kGiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
    faults = std::make_unique<FaultInjector>(sim, cluster);
    rt->AttachFaultInjector(*faults);
  }

  Ctx ctx() { return rt->CtxOn(0); }

  Ref<MemoryProclet> CreatePinned(MachineId machine,
                                  int64_t heap = 1 * kMiB) {
    PlacementRequest req;
    req.heap_bytes = heap;
    req.pinned = machine;
    return *sim.BlockOn(rt->Create<MemoryProclet>(ctx(), req));
  }

  void Crash(MachineId machine) {
    faults->ScheduleCrash(sim.Now() + Duration::Millis(1), machine);
    sim.RunFor(Duration::Millis(50));
  }
};

Task<Result<uint64_t>> Put(Ctx ctx, Ref<MemoryProclet> p, std::string value) {
  auto call = p.Call(
      ctx,
      [value = std::move(value)](MemoryProclet& m) mutable
      -> Task<Result<uint64_t>> { co_return m.PutObject(std::move(value)); },
      WireSizeOf(value));
  co_return co_await std::move(call);
}

Task<Result<std::string>> GetString(Ctx ctx, Ref<MemoryProclet> p,
                                    uint64_t id) {
  auto call = p.Call(ctx, [id](MemoryProclet& m) -> Task<Result<std::string>> {
    co_return m.template GetObject<std::string>(id);
  });
  co_return co_await std::move(call);
}

TEST(CheckpointTest, RestoreLostProcletFromCheckpoint) {
  Fixture f;
  CheckpointManager checkpoints(*f.rt);
  RecoveryCoordinator recovery(*f.rt);
  recovery.AttachCheckpoints(&checkpoints);
  recovery.Arm(*f.faults);

  Ref<MemoryProclet> p = f.CreatePinned(1);
  uint64_t id = *f.sim.BlockOn(Put(f.ctx(), p, std::string("durable")));
  ASSERT_TRUE(
      f.sim.BlockOn(checkpoints.ProtectAs<MemoryProclet>(f.ctx(), p.id()))
          .ok());
  EXPECT_EQ(checkpoints.protected_count(), 1);

  f.Crash(1);

  // The coordinator restored it; the old ref heals through the directory.
  EXPECT_FALSE(f.rt->IsLost(p.id()));
  EXPECT_NE(p.Location(), 1u);
  EXPECT_EQ(f.rt->stats().restored_proclets, 1);
  EXPECT_EQ(recovery.total_restored(), 1);
  EXPECT_EQ(recovery.total_unrecoverable(), 0);
  Result<std::string> value = f.sim.BlockOn(GetString(f.ctx(), p, id));
  ASSERT_TRUE(value.ok()) << value.status().message();
  EXPECT_EQ(*value, "durable");
}

TEST(CheckpointTest, IncrementalCheckpointShipsOnlyDirtyBytes) {
  Fixture f;
  CheckpointManager checkpoints(*f.rt);

  Ref<MemoryProclet> p = f.CreatePinned(1);
  (void)*f.sim.BlockOn(Put(f.ctx(), p, std::string(64 * 1024, 'x')));
  ASSERT_TRUE(
      f.sim.BlockOn(checkpoints.ProtectAs<MemoryProclet>(f.ctx(), p.id()))
          .ok());
  const int64_t full = checkpoints.bytes_shipped();
  EXPECT_GE(full, 64 * 1024);  // first checkpoint ships the full image

  // A small mutation: the next checkpoint ships only the delta.
  (void)*f.sim.BlockOn(Put(f.ctx(), p, std::string(512, 'y')));
  ASSERT_TRUE(f.sim.BlockOn(checkpoints.CheckpointNow(f.ctx(), p.id())).ok());
  const int64_t delta = checkpoints.bytes_shipped() - full;
  EXPECT_GT(delta, 0);
  EXPECT_LT(delta, full / 4);

  // Nothing dirty: a third checkpoint is free.
  ASSERT_TRUE(f.sim.BlockOn(checkpoints.CheckpointNow(f.ctx(), p.id())).ok());
  EXPECT_EQ(checkpoints.bytes_shipped() - full, delta);

  // The runtime-level counter matches the manager's own accounting.
  EXPECT_EQ(f.rt->stats().checkpoint_bytes, checkpoints.bytes_shipped());
}

TEST(ReplicationTest, PromotionHealsExistingDistPtrs) {
  Fixture f;
  ReplicationManager replication(*f.rt);
  RecoveryCoordinator recovery(*f.rt);
  recovery.AttachReplication(&replication);
  replication.Arm(*f.faults);
  recovery.Arm(*f.faults);

  Ref<MemoryProclet> p = f.CreatePinned(1);
  DistPtr<std::string> ptr =
      *f.sim.BlockOn(NewPtr(f.ctx(), p, std::string("v0")));
  ASSERT_TRUE(
      f.sim.BlockOn(replication.ReplicateAs<MemoryProclet>(f.ctx(), p.id()))
          .ok());
  const MachineId backup = replication.BackupMachineOf(p.id());
  EXPECT_NE(backup, 1u);

  // A mutation after establishment rides the log to the backup.
  ASSERT_TRUE(f.sim.BlockOn(ptr.Store(f.ctx(), std::string("v1"))).ok());
  EXPECT_GE(replication.mutations_shipped(), 1);

  f.Crash(1);

  EXPECT_EQ(replication.promotions(), 1);
  EXPECT_FALSE(f.rt->IsLost(p.id()));
  EXPECT_EQ(p.Location(), backup);  // promoted in place, no data transfer
  EXPECT_EQ(f.rt->stats().restored_proclets, 1);
  Result<std::string> value = f.sim.BlockOn(ptr.Load(f.ctx()));
  ASSERT_TRUE(value.ok()) << value.status().message();
  EXPECT_EQ(*value, "v1");  // the acked mutation survived the crash
}

TEST(RecoveryTest, AwaitRestoreTimesOutWithoutRecovery) {
  Fixture f;
  Ref<MemoryProclet> p = f.CreatePinned(1);
  f.Crash(1);
  ASSERT_TRUE(f.rt->IsLost(p.id()));

  const SimTime before = f.sim.Now();
  const bool restored =
      f.sim.BlockOn(f.rt->AwaitRestore(p.id(), Duration::Millis(2)));
  EXPECT_FALSE(restored);
  EXPECT_LE(f.sim.Now() - before, Duration::Millis(3));  // bounded stall
}

// The tuner widens the interval when the checkpoint stream exceeds its
// bandwidth budget and tightens it when there is headroom.
TEST(CheckpointTunerTest, AdaptsIntervalToTraffic) {
  Fixture f;
  CheckpointManager checkpoints(
      *f.rt, CheckpointManager::Options{Duration::Millis(2)});
  CheckpointIntervalTuner::Options topt;
  topt.max_overhead_fraction = 0.10;
  topt.reference_bandwidth = 1e6;  // tiny budget: 100 KB/s
  CheckpointIntervalTuner tuner(*f.rt, checkpoints, topt);

  Ref<MemoryProclet> p = f.CreatePinned(1);
  ASSERT_TRUE(
      f.sim.BlockOn(checkpoints.ProtectAs<MemoryProclet>(f.ctx(), p.id()))
          .ok());
  checkpoints.Start();

  // In production the tuner is an AdaptiveController pass; here Register only
  // snapshots the measurement baseline (after the initial full image, which is
  // protection cost, not steady-state traffic) and the control steps are
  // driven by hand so each measurement window is exact.
  AdaptiveController controller(*f.rt, 0, Duration::Millis(5));
  tuner.Register(controller);

  // A hot writer: ~16 KiB of dirty bytes per ms blows the 100 KB/s budget.
  for (int i = 0; i < 10; ++i) {
    (void)*f.sim.BlockOn(Put(f.ctx(), p, std::string(16 * 1024, 'x')));
    f.sim.RunFor(Duration::Millis(1));
  }
  f.sim.BlockOn(tuner.TuneOnce(f.ctx()));
  EXPECT_EQ(tuner.widenings(), 1);
  EXPECT_GT(checkpoints.interval(), Duration::Millis(2));

  // Writer stops. The next window may still carry the tail of the last flush;
  // consume it, then a fully quiet window reads ~zero traffic and the
  // interval creeps back down.
  f.sim.RunFor(Duration::Millis(12));
  f.sim.BlockOn(tuner.TuneOnce(f.ctx()));
  const Duration before_quiet = checkpoints.interval();
  f.sim.RunFor(Duration::Millis(40));
  f.sim.BlockOn(tuner.TuneOnce(f.ctx()));
  EXPECT_GT(tuner.tightenings(), 0);
  EXPECT_LT(checkpoints.interval(), before_quiet);
  checkpoints.Stop();
}

// A job that completed on a machine that later crashed must not be
// double-counted when lineage resubmits the incomplete set: the completion
// marker lives client-side, so whichever duplicate runs second no-ops.
TEST(DistPoolTest, LineageResubmitNeverDoubleCounts) {
  Fixture f;
  DistPool::Options options;
  options.initial_proclets = 2;
  options.lineage = true;
  DistPool pool = *f.sim.BlockOn(DistPool::Create(f.ctx(), options));
  ASSERT_EQ(pool.members().size(), 2u);

  constexpr int kJobs = 8;
  int64_t counter = 0;
  for (int i = 0; i < kJobs; ++i) {
    Status submitted = f.sim.BlockOn(pool.Submit(
        f.ctx(), [&counter](Ctx jctx) -> Task<> {
          co_await jctx.rt->sim().Sleep(Duration::Micros(200));
          ++counter;
        }));
    ASSERT_TRUE(submitted.ok());
  }
  EXPECT_EQ(pool.pending_jobs(), kJobs);

  // Kill one member's machine while jobs are still queued or running, then
  // resubmit everything that has not completed. Jobs whose first copy is
  // still queued on the survivor get a duplicate; dedup absorbs it.
  const MachineId victim = pool.members()[1].Location();
  f.faults->ScheduleCrash(f.sim.Now() + Duration::Micros(50), victim);
  f.sim.RunFor(Duration::Millis(2));
  ASSERT_TRUE(f.sim.BlockOn(pool.ResubmitIncomplete(f.ctx())).ok());
  f.sim.BlockOn(pool.Drain(f.ctx()));

  EXPECT_EQ(counter, kJobs);  // every job counted exactly once
  EXPECT_EQ(pool.pending_jobs(), 0);
  EXPECT_GE(pool.deduped_jobs(), 0);
}

// Without lineage the same scenario double-counts: the pool's at-least-once
// retry re-runs work whose completion the crash erased. This pins down WHY
// the lineage option exists (and documents the default's sharp edge).
TEST(DistPoolTest, WithoutLineageResubmissionDoubleCounts) {
  Fixture f;
  DistPool::Options options;
  options.initial_proclets = 2;
  options.lineage = false;
  DistPool pool = *f.sim.BlockOn(DistPool::Create(f.ctx(), options));

  constexpr int kJobs = 4;
  int64_t counter = 0;
  auto submit_all = [&]() {
    for (int i = 0; i < kJobs; ++i) {
      (void)f.sim.BlockOn(pool.Submit(f.ctx(), [&counter](Ctx) -> Task<> {
        ++counter;
        co_return;
      }));
    }
  };
  submit_all();
  f.sim.BlockOn(pool.Drain(f.ctx()));
  EXPECT_EQ(counter, kJobs);
  // The naive client-side "retry everything" after a crash reruns finished
  // jobs — there is no marker to stop it.
  submit_all();
  f.sim.BlockOn(pool.Drain(f.ctx()));
  EXPECT_EQ(counter, 2 * kJobs);
}

}  // namespace
}  // namespace quicksand
