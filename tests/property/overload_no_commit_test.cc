// Property: overload rejection composes with epoch/request-id fencing into
// a clean refusal. A request that was shed by admission control or rejected
// because its deadline had already passed NEVER commits on the shard — the
// FenceGuard never witnesses its request id, the key is untouched — and the
// SAME request id retried after the overload clears applies exactly once
// (the dedup machinery is oblivious to how many rejections preceded the
// successful attempt).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "quicksand/common/bytes.h"
#include "quicksand/common/random.h"
#include "quicksand/overload/admission.h"
#include "quicksand/proclet/fenced_kv_proclet.h"

namespace quicksand {
namespace {

constexpr int kSeeds = 4;
constexpr int kRequests = 10;
constexpr MachineId kShardHost = 1;

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;
  std::unique_ptr<AdmissionController> admission;

  Fixture() {
    for (int i = 0; i < 2; ++i) {
      MachineSpec spec;
      spec.cores = 1;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
    AdmissionOptions opt;
    opt.target = Duration::Micros(20);
    opt.interval = Duration::Micros(200);
    admission = std::make_unique<AdmissionController>(cluster, opt);
    rt->AttachAdmission(admission.get());
  }

  // Stand a queue on the shard host and walk the controller through its
  // grace interval so the next admission decision there is a shed.
  void DriveIntoShedding() {
    for (int i = 0; i < 50; ++i) {
      sim.Spawn(cluster.machine(kShardHost).cpu().Run(Duration::Millis(1),
                                                      kPriorityNormal),
                "overload_" + std::to_string(i));
    }
    sim.RunFor(Duration::Micros(100));
    ASSERT_TRUE(admission->Admit(kShardHost, sim.Now()));  // grace
    sim.RunFor(Duration::Micros(300));
    ASSERT_FALSE(admission->Admit(kShardHost, sim.Now()));
    ASSERT_TRUE(admission->Overloaded(kShardHost));
  }
};

enum class Outcome { kApplied, kDuplicate, kFenced, kShed, kDeadline, kOther };

// One Put attempt under the given context; classifies how it ended.
Task<Outcome> TryPut(Ref<FencedKvProclet> kv, Ctx ctx, uint64_t epoch,
                     uint64_t rid, uint64_t key, int64_t value) {
  Outcome outcome = Outcome::kOther;  // co_await is banned in catch handlers
  try {
    auto call = kv.Call(ctx, [epoch, rid, key, value](FencedKvProclet& p)
                                 -> Task<FencedKvProclet::PutResult> {
      co_return p.Put(epoch, rid, key, value);
    });
    const FencedKvProclet::PutResult result = co_await std::move(call);
    if (result.applied) {
      outcome = Outcome::kApplied;
    } else if (result.duplicate) {
      outcome = Outcome::kDuplicate;
    } else if (result.fenced) {
      outcome = Outcome::kFenced;
    }
  } catch (const InvocationSheddedError&) {
    outcome = Outcome::kShed;
  } catch (const DeadlineExpiredError&) {
    outcome = Outcome::kDeadline;
  }
  co_return outcome;
}

TEST(OverloadNoCommitTest, RejectedRequestsNeverCommitAndRetryExactlyOnce) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Fixture f;
    Rng rng(seed);

    PlacementRequest req;
    req.heap_bytes = 1_MiB;
    req.pinned = kShardHost;
    Ref<FencedKvProclet> kv =
        *f.sim.BlockOn(f.rt->Create<FencedKvProclet>(f.rt->CtxOn(0), req));
    const uint64_t epoch = f.rt->EpochOf(kv.id());
    ASSERT_NE(epoch, 0u);

    f.DriveIntoShedding();

    // Fire requests into the overload. Half carry an already-expired
    // deadline (rejected before admission is even consulted); the rest hit
    // the shedding controller. Every one must be refused.
    struct Rejected {
      uint64_t rid;
      uint64_t key;
      Outcome outcome;
    };
    std::vector<Rejected> rejected;
    for (int i = 0; i < kRequests; ++i) {
      const uint64_t rid = 100 + static_cast<uint64_t>(i);
      const uint64_t key = static_cast<uint64_t>(i);
      Ctx ctx = f.rt->CtxOn(0);
      const bool expired = rng.NextBool();
      if (expired) {
        ctx.trace = ctx.trace.WithDeadline(f.sim.Now() - Duration::Micros(1));
      } else {
        // Burn any pending CoDel probe so this arrival is deterministically
        // shed rather than admitted as the probe (probes are the controller
        // working as designed; here we want the rejection path).
        while (f.admission->Admit(kShardHost, f.sim.Now())) {
        }
      }
      const Outcome got = f.sim.BlockOn(
          TryPut(kv, ctx, epoch, rid, key, static_cast<int64_t>(i) * 7));
      EXPECT_EQ(got, expired ? Outcome::kDeadline : Outcome::kShed)
          << "seed " << seed << " i " << i;
      rejected.push_back({rid, key, got});
    }
    EXPECT_EQ(f.rt->stats().shed_invocations +
                  f.rt->stats().deadline_rejected_invocations,
              static_cast<int64_t>(rejected.size()));

    // The core property: none of the rejected rids reached the shard.
    FencedKvProclet* p = f.rt->UnsafeGet<FencedKvProclet>(kv.id());
    ASSERT_NE(p, nullptr);
    for (const Rejected& r : rejected) {
      EXPECT_FALSE(p->guard().Executed(r.rid))
          << "seed " << seed << " rid " << r.rid;
      EXPECT_EQ(p->ApplyCount(r.key), 0)
          << "seed " << seed << " key " << r.key;
      EXPECT_EQ(p->Get(r.key).status().code(), StatusCode::kNotFound);
    }
    EXPECT_EQ(p->size(), 0u);

    // Overload clears (drain the queue; drop the controller out of the
    // path, as a client whose next attempt lands on a healthy machine).
    f.sim.RunFor(Duration::Millis(60));
    f.rt->AttachAdmission(nullptr);

    // Retrying the SAME rids now applies each write exactly once; a
    // duplicate retry after the ack dedups. Rejection left no trace that
    // could confuse the fencing machinery.
    for (const Rejected& r : rejected) {
      const Outcome first = f.sim.BlockOn(TryPut(
          kv, f.rt->CtxOn(0), epoch, r.rid, r.key,
          static_cast<int64_t>(r.key) * 7));
      EXPECT_EQ(first, Outcome::kApplied) << "seed " << seed;
      const Outcome second = f.sim.BlockOn(TryPut(
          kv, f.rt->CtxOn(0), epoch, r.rid, r.key,
          static_cast<int64_t>(r.key) * 7));
      EXPECT_EQ(second, Outcome::kDuplicate) << "seed " << seed;
      EXPECT_EQ(p->ApplyCount(r.key), 1) << "seed " << seed;
      EXPECT_TRUE(p->guard().Executed(r.rid));
    }
  }
}

TEST(OverloadNoCommitTest, ExpiredDeadlineRejectsEvenOnAnIdleMachine) {
  // Deadline rejection is not an overload artifact: a dead-on-arrival
  // request is refused by a completely idle shard too, and commits nothing.
  Fixture f;
  PlacementRequest req;
  req.heap_bytes = 1_MiB;
  req.pinned = kShardHost;
  Ref<FencedKvProclet> kv =
      *f.sim.BlockOn(f.rt->Create<FencedKvProclet>(f.rt->CtxOn(0), req));
  const uint64_t epoch = f.rt->EpochOf(kv.id());

  f.sim.RunFor(Duration::Millis(1));
  Ctx ctx = f.rt->CtxOn(0);
  ctx.trace = ctx.trace.WithDeadline(f.sim.Now() - Duration::Nanos(1));
  EXPECT_EQ(f.sim.BlockOn(TryPut(kv, ctx, epoch, 1, 42, 7)),
            Outcome::kDeadline);
  FencedKvProclet* p = f.rt->UnsafeGet<FencedKvProclet>(kv.id());
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->guard().Executed(1));
  EXPECT_EQ(p->ApplyCount(42), 0);
  EXPECT_EQ(f.rt->stats().deadline_rejected_invocations, 1);
}

}  // namespace
}  // namespace quicksand
