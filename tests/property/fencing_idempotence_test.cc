// Property: directory rebind + epoch fencing is idempotent under
// at-least-once delivery. For randomized interleavings of migrations and
// acked writes over a lossy network, replaying any prefix — or duplicate —
// of the successful migration commands never yields a second live owner,
// and no acknowledged write is lost or double-applied.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/common/random.h"
#include "quicksand/durability/recovery_coordinator.h"
#include "quicksand/durability/replication.h"
#include "quicksand/proclet/fenced_kv_proclet.h"

namespace quicksand {
namespace {

constexpr int kSeeds = 5;
constexpr int kSteps = 14;
constexpr double kLossProbability = 0.2;

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;
  std::unique_ptr<FaultInjector> faults;

  explicit Fixture(int machines = 4) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 4;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
    faults = std::make_unique<FaultInjector>(sim, cluster);
    rt->AttachFaultInjector(*faults);
  }

  void SetAllLinkLoss(double p) {
    for (MachineId a = 0; a < cluster.size(); ++a) {
      for (MachineId b = 0; b < cluster.size(); ++b) {
        if (a != b) {
          cluster.fabric().SetLinkLoss(a, b, p);
        }
      }
    }
  }
};

// One successfully executed migration command, as a client would log it
// before sending: destination plus the fencing token it resolved.
struct MigrationCommand {
  MachineId dst;
  uint64_t token;
};

Task<FencedKvProclet::PutResult> RawPut(Ref<FencedKvProclet> kv, Ctx ctx,
                                        uint64_t epoch, uint64_t rid,
                                        uint64_t key, int64_t value) {
  auto call = kv.Call(
      ctx, [epoch, rid, key, value](FencedKvProclet& p)
      -> Task<FencedKvProclet::PutResult> {
        co_return p.Put(epoch, rid, key, value);
      });
  co_return co_await std::move(call);
}

// At-least-once client write: same request id across retries; re-resolves
// the epoch each attempt. True once the write is ACKED (applied or deduped).
Task<bool> AckedPut(Ref<FencedKvProclet> kv, Runtime& rt, uint64_t rid,
                    uint64_t key, int64_t value) {
  for (int attempt = 0; attempt < 32; ++attempt) {
    const uint64_t epoch = rt.EpochOf(kv.id());
    if (epoch == 0) {
      co_await rt.sim().Sleep(Duration::Micros(200));
      continue;  // mid-rebind; re-resolve
    }
    bool lost = false;  // co_await is not allowed inside a catch handler
    try {
      FencedKvProclet::PutResult result =
          co_await RawPut(kv, rt.CtxOn(0), epoch, rid, key, value);
      if (result.applied || result.duplicate) {
        co_return true;
      }
      // fenced: the epoch moved between resolve and execute; retry fresh
    } catch (const ProcletUnreachableError&) {
      // network ate a leg; the rid makes the retry safe
    } catch (const ProcletLostError&) {
      lost = true;
    }
    if (lost) {
      (void)co_await rt.AwaitRestore(kv.id(), Duration::Millis(50));
    }
    co_await rt.sim().Sleep(Duration::Micros(200));
  }
  co_return false;
}

TEST(FencingIdempotenceTest, ReplayedMigrationPrefixesNeverYieldTwoOwners) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Fixture f;
    Rng rng(seed);

    PlacementRequest req;
    req.heap_bytes = 1_MiB;
    req.pinned = 1;
    Ref<FencedKvProclet> kv =
        *f.sim.BlockOn(f.rt->Create<FencedKvProclet>(f.rt->CtxOn(0), req));

    f.SetAllLinkLoss(kLossProbability);

    // Random interleaving of migrations and acked writes over the lossy
    // fabric. Only SUCCESSFUL migrations enter the command log: a failed
    // one did not rebind, so its token is still current by construction.
    std::vector<MigrationCommand> log;
    std::vector<uint64_t> acked_keys;
    for (int step = 0; step < kSteps; ++step) {
      if (rng.NextBool()) {
        const MachineId dst =
            static_cast<MachineId>(1 + rng.NextBounded(3));  // 1..3
        if (dst == f.rt->LocationOf(kv.id())) {
          continue;  // already-there "migrations" don't rebind (no new token)
        }
        const uint64_t token = f.rt->EpochOf(kv.id());
        const Status moved = f.sim.BlockOn(f.rt->Migrate(kv.id(), dst, token));
        if (moved.ok()) {
          log.push_back({dst, token});
        }
      } else {
        const uint64_t key = static_cast<uint64_t>(step);
        ASSERT_TRUE(f.sim.BlockOn(AckedPut(kv, *f.rt, 1000 + key, key,
                                           static_cast<int64_t>(key) * 3)))
            << "seed " << seed << " step " << step;
        acked_keys.push_back(key);
      }
    }

    f.SetAllLinkLoss(0.0);
    const MachineId owner = f.rt->LocationOf(kv.id());
    ASSERT_NE(owner, kInvalidMachineId);
    const uint64_t final_epoch = f.rt->EpochOf(kv.id());

    // Replay every prefix of the command log, each command twice (duplicate
    // delivery). Every token predates a rebind, so every replay must fence.
    for (size_t prefix = 0; prefix < log.size(); ++prefix) {
      for (int dup = 0; dup < 2; ++dup) {
        const Status replay =
            f.sim.BlockOn(f.rt->Migrate(kv.id(), log[prefix].dst,
                                        log[prefix].token));
        EXPECT_EQ(replay.code(), StatusCode::kAborted)
            << "seed " << seed << " prefix " << prefix;
      }
    }
    EXPECT_EQ(f.rt->LocationOf(kv.id()), owner);
    EXPECT_EQ(f.rt->EpochOf(kv.id()), final_epoch);
    EXPECT_EQ(f.rt->stats().fenced_migrations,
              static_cast<int64_t>(2 * log.size()));

    // No acked write lost or double-applied, retries notwithstanding.
    FencedKvProclet* p = f.rt->UnsafeGet<FencedKvProclet>(kv.id());
    ASSERT_NE(p, nullptr);
    for (uint64_t key : acked_keys) {
      Result<int64_t> value = p->Get(key);
      ASSERT_TRUE(value.ok()) << "seed " << seed << " key " << key;
      EXPECT_EQ(*value, static_cast<int64_t>(key) * 3);
      EXPECT_EQ(p->ApplyCount(key), 1) << "seed " << seed << " key " << key;
    }
  }
}

TEST(FencingIdempotenceTest, FailoverFencesEveryPreDeclareToken) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Fixture f;
    Rng rng(seed);
    ReplicationManager replication(*f.rt);
    RecoveryCoordinator recovery(*f.rt);
    recovery.AttachReplication(&replication);
    f.rt->SetRecoveryEnabled(true);

    PlacementRequest req;
    req.heap_bytes = 1_MiB;
    req.pinned = 1;
    Ref<FencedKvProclet> kv =
        *f.sim.BlockOn(f.rt->Create<FencedKvProclet>(f.rt->CtxOn(0), req));
    Ctx ctx = f.rt->CtxOn(0);
    ASSERT_TRUE(
        f.sim.BlockOn(replication.ReplicateAs<FencedKvProclet>(ctx, kv.id()))
            .ok());

    // A few acked writes and moves before the failure.
    std::vector<uint64_t> tokens;
    std::vector<uint64_t> acked_keys;
    for (int step = 0; step < 6; ++step) {
      tokens.push_back(f.rt->EpochOf(kv.id()));
      if (rng.NextBool()) {
        // Keep the primary off its backup's machine, or the single declared
        // death would take out both copies (anti-affinity is the
        // ReplicationManager's job in production paths).
        const MachineId dst = static_cast<MachineId>(1 + rng.NextBounded(3));
        if (dst != replication.BackupMachineOf(kv.id())) {
          (void)f.sim.BlockOn(f.rt->Migrate(kv.id(), dst));
        }
      }
      const uint64_t key = static_cast<uint64_t>(step);
      ASSERT_TRUE(f.sim.BlockOn(
          AckedPut(kv, *f.rt, 2000 + key, key, static_cast<int64_t>(key) + 7)));
      acked_keys.push_back(key);
    }

    // Gray failure of the current host: declared dead, never crashed.
    const MachineId host = f.rt->LocationOf(kv.id());
    ASSERT_NE(host, kInvalidMachineId);
    f.rt->DeclareMachineDead(host);
    RecoveryReport report = f.sim.BlockOn(recovery.Recover(ctx, host));
    ASSERT_EQ(report.promoted, 1) << "seed " << seed;

    const MachineId owner = f.rt->LocationOf(kv.id());
    ASSERT_NE(owner, kInvalidMachineId);
    EXPECT_NE(owner, host);

    // Every pre-declare token — including the one current at the instant of
    // failure — is stale now: promotion bumped the epoch.
    for (uint64_t token : tokens) {
      const Status replay = f.sim.BlockOn(f.rt->Migrate(kv.id(), 1, token));
      EXPECT_EQ(replay.code(), StatusCode::kAborted) << "seed " << seed;
      EXPECT_TRUE(f.sim.BlockOn(RawPut(kv, ctx, token, 9000 + token, 0, -1))
                      .fenced);
    }
    EXPECT_EQ(f.rt->LocationOf(kv.id()), owner);

    // Acked writes survived the failover exactly once.
    FencedKvProclet* p = f.rt->UnsafeGet<FencedKvProclet>(kv.id());
    ASSERT_NE(p, nullptr);
    for (uint64_t key : acked_keys) {
      Result<int64_t> value = p->Get(key);
      ASSERT_TRUE(value.ok()) << "seed " << seed << " key " << key;
      EXPECT_EQ(*value, static_cast<int64_t>(key) + 7);
      EXPECT_EQ(p->ApplyCount(key), 1);
    }
  }
}

}  // namespace
}  // namespace quicksand
