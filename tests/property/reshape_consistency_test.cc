// Property: a fenced write stream racing shard splits/merges/migrations
// never loses a write and never applies one twice.
//
// A writer drives the frontend with an open stream of keyed Puts (stable
// request ids, retries through the normal budget) while a reshaper fiber
// splits, merges, and migrates shards at random times. Invariants checked
// after draining, across several seeds:
//
//  * conservation — every request is accounted exactly once (ok or failed),
//  * exactly-once — summed ApplyCount over all shards equals the number of
//    successful writes: a write that raced a reshape either bounced and
//    re-applied on the new owner (wrong_shard does not burn the rid) or
//    deduped against the dedup state the payload carried across,
//  * coverage — the surviving ranges partition the hash space, and each
//    written key is owned by exactly one shard, which holds its value.

#include <gtest/gtest.h>

#include <map>

#include "quicksand/common/bytes.h"
#include "quicksand/common/random.h"
#include "quicksand/serving/kv_frontend.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 4) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 2;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }
};

// Issues `writes` Puts over `key_space` keys at ~`qps`, one fiber each.
Task<> WriterFiber(Simulator& sim, KvFrontend& frontend, Rng& rng,
                   int writes, uint64_t key_space, double qps) {
  const double mean_gap_ns = 1e9 / qps;
  for (int i = 0; i < writes; ++i) {
    co_await sim.Sleep(Duration::Nanos(std::max<int64_t>(
        1, static_cast<int64_t>(rng.NextExponential(mean_gap_ns)))));
    sim.Spawn(frontend.Serve(rng.NextBounded(key_space), /*is_read=*/false),
              "writer_put");
  }
}

// Randomly reshapes while the writer runs: split a random shard, merge a
// random adjacent pair, or migrate a random shard, every 1-3ms.
Task<> ReshaperFiber(Simulator& sim, Runtime& rt, KvFrontend& frontend,
                     Rng& rng, int rounds, int* reshapes_done) {
  for (int i = 0; i < rounds; ++i) {
    co_await sim.Sleep(Duration::Micros(1000 + rng.NextBounded(2000)));
    Ctx ctx = rt.CtxOn(frontend.options().home);
    const size_t n = frontend.shards().size();
    const uint64_t dice = rng.NextBounded(3);
    Status status = Status::Ok();
    if ((dice == 0 && n < 6) || n == 1) {
      const ProcletId donor =
          frontend.shards()[rng.NextBounded(n)].id();
      const Result<uint64_t> point = frontend.SuggestSplitPoint(donor);
      if (!point.ok()) {
        continue;
      }
      const MachineId target =
          1 + static_cast<MachineId>(rng.NextBounded(rt.cluster().size() - 1));
      auto split = frontend.SplitShard(ctx, donor, *point, target);
      status = co_await std::move(split);
    } else if (dice == 1 && n >= 2) {
      const size_t left = rng.NextBounded(n - 1);
      auto merge = frontend.MergeShards(ctx, frontend.shards()[left].id(),
                                        frontend.shards()[left + 1].id());
      status = co_await std::move(merge);
    } else {
      const ProcletId shard = frontend.shards()[rng.NextBounded(n)].id();
      const MachineId target =
          1 + static_cast<MachineId>(rng.NextBounded(rt.cluster().size() - 1));
      auto migrate = frontend.MigrateShard(ctx, shard, target);
      status = co_await std::move(migrate);
    }
    if (status.ok()) {
      ++*reshapes_done;
    }
    // Failures (e.g. a migrate bouncing off its own machine) are fine —
    // the property is about the writes, not the reshape success rate.
  }
}

TEST(ReshapeConsistencyTest, FencedWritesSurviveConcurrentReshaping) {
  constexpr int kWrites = 250;
  constexpr uint64_t kKeySpace = 48;
  int total_reshapes = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Fixture f;
    KvFrontendOptions opt;
    opt.shards = 2;
    opt.max_attempts = 6;  // reshape bounces must not exhaust attempts
    KvFrontend frontend(*f.rt, opt);
    ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());

    Rng writer_rng(seed);
    Rng reshaper_rng(seed * 7919);
    int reshapes = 0;
    f.sim.Spawn(WriterFiber(f.sim, frontend, writer_rng, kWrites, kKeySpace,
                            /*qps=*/10000.0),
                "writer");
    f.sim.Spawn(ReshaperFiber(f.sim, *f.rt, frontend, reshaper_rng,
                              /*rounds=*/15, &reshapes),
                "reshaper");
    // Writer needs ~25ms, reshaper ~30ms; drain well past both.
    f.sim.RunFor(Duration::Millis(120));

    // Conservation: every offered request accounted exactly once.
    ASSERT_EQ(frontend.offered(), kWrites) << "seed " << seed;
    ASSERT_EQ(frontend.ok_in_slo() + frontend.ok_late() + frontend.failed(),
              frontend.offered())
        << "seed " << seed;
    const int64_t succeeded = frontend.ok_in_slo() + frontend.ok_late();

    // Exactly-once: total apply count == successful writes. A lost write
    // (dropped payload) makes this too small; a double apply (dedup state
    // lost in a reshape) makes it too big.
    int64_t total_applies = 0;
    for (const auto& shard : frontend.shards()) {
      const auto* p = f.rt->UnsafeGet<FencedKvProclet>(shard.id());
      ASSERT_NE(p, nullptr);
      for (uint64_t k = 0; k < kKeySpace; ++k) {
        total_applies += p->ApplyCount(k);
      }
    }
    EXPECT_EQ(total_applies, succeeded) << "seed " << seed;

    // Coverage: ranges partition the hash space...
    const auto shards = frontend.SampleShards(f.sim.Now());
    ASSERT_FALSE(shards.empty());
    EXPECT_EQ(shards.front().range_begin, 0u) << "seed " << seed;
    EXPECT_EQ(shards.back().range_end, UINT64_MAX) << "seed " << seed;
    for (size_t i = 0; i + 1 < shards.size(); ++i) {
      EXPECT_EQ(shards[i].range_end, shards[i + 1].range_begin)
          << "seed " << seed;
    }
    // ...and each key has exactly one owner; a written key's value lives
    // there and nowhere else.
    for (uint64_t k = 0; k < kKeySpace; ++k) {
      int owners = 0;
      int holders = 0;
      for (const auto& shard : frontend.shards()) {
        const auto* p = f.rt->UnsafeGet<FencedKvProclet>(shard.id());
        if (p->Owns(k)) {
          ++owners;
          if (p->Get(k).ok()) {
            ++holders;
          }
        }
      }
      EXPECT_EQ(owners, 1) << "seed " << seed << " key " << k;
      EXPECT_LE(holders, owners) << "seed " << seed << " key " << k;
    }
    total_reshapes += reshapes;
  }
  // The property is vacuous if reshapes never actually interleaved.
  EXPECT_GT(total_reshapes, 10);
}

}  // namespace
}  // namespace quicksand
