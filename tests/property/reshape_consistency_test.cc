// Property: a fenced write stream racing shard splits/merges/migrations
// never loses a write and never applies one twice.
//
// A writer drives the frontend with an open stream of keyed Puts (stable
// request ids, retries through the normal budget) while a reshaper fiber
// splits, merges, and migrates shards at random times. Invariants checked
// after draining, across several seeds:
//
//  * conservation — every request is accounted exactly once (ok or failed),
//  * exactly-once — summed ApplyCount over all shards equals the number of
//    successful writes: a write that raced a reshape either bounced and
//    re-applied on the new owner (wrong_shard does not burn the rid) or
//    deduped against the dedup state the payload carried across,
//  * coverage — the surviving ranges partition the hash space, and each
//    written key is owned by exactly one shard, which holds its value.

#include <gtest/gtest.h>

#include <map>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/common/random.h"
#include "quicksand/serving/kv_frontend.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 4) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 2;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }
};

// Issues `writes` Puts over `key_space` keys at ~`qps`, one fiber each.
Task<> WriterFiber(Simulator& sim, KvFrontend& frontend, Rng& rng,
                   int writes, uint64_t key_space, double qps) {
  const double mean_gap_ns = 1e9 / qps;
  for (int i = 0; i < writes; ++i) {
    co_await sim.Sleep(Duration::Nanos(std::max<int64_t>(
        1, static_cast<int64_t>(rng.NextExponential(mean_gap_ns)))));
    sim.Spawn(frontend.Serve(rng.NextBounded(key_space), /*is_read=*/false),
              "writer_put");
  }
}

// Randomly reshapes while the writer runs: split a random shard, merge a
// random adjacent pair, or migrate a random shard, every 1-3ms.
Task<> ReshaperFiber(Simulator& sim, Runtime& rt, KvFrontend& frontend,
                     Rng& rng, int rounds, int* reshapes_done) {
  for (int i = 0; i < rounds; ++i) {
    co_await sim.Sleep(Duration::Micros(1000 + rng.NextBounded(2000)));
    Ctx ctx = rt.CtxOn(frontend.options().home);
    const size_t n = frontend.shards().size();
    const uint64_t dice = rng.NextBounded(3);
    Status status = Status::Ok();
    if ((dice == 0 && n < 6) || n == 1) {
      const ProcletId donor =
          frontend.shards()[rng.NextBounded(n)].id();
      const Result<uint64_t> point = frontend.SuggestSplitPoint(donor);
      if (!point.ok()) {
        continue;
      }
      const MachineId target =
          1 + static_cast<MachineId>(rng.NextBounded(rt.cluster().size() - 1));
      auto split = frontend.SplitShard(ctx, donor, *point, target);
      status = co_await std::move(split);
    } else if (dice == 1 && n >= 2) {
      const size_t left = rng.NextBounded(n - 1);
      auto merge = frontend.MergeShards(ctx, frontend.shards()[left].id(),
                                        frontend.shards()[left + 1].id());
      status = co_await std::move(merge);
    } else {
      const ProcletId shard = frontend.shards()[rng.NextBounded(n)].id();
      const MachineId target =
          1 + static_cast<MachineId>(rng.NextBounded(rt.cluster().size() - 1));
      auto migrate = frontend.MigrateShard(ctx, shard, target);
      status = co_await std::move(migrate);
    }
    if (status.ok()) {
      ++*reshapes_done;
    }
    // Failures (e.g. a migrate bouncing off its own machine) are fine —
    // the property is about the writes, not the reshape success rate.
  }
}

TEST(ReshapeConsistencyTest, FencedWritesSurviveConcurrentReshaping) {
  constexpr int kWrites = 250;
  constexpr uint64_t kKeySpace = 48;
  int total_reshapes = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Fixture f;
    KvFrontendOptions opt;
    opt.shards = 2;
    opt.max_attempts = 6;  // reshape bounces must not exhaust attempts
    KvFrontend frontend(*f.rt, opt);
    ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());

    Rng writer_rng(seed);
    Rng reshaper_rng(seed * 7919);
    int reshapes = 0;
    f.sim.Spawn(WriterFiber(f.sim, frontend, writer_rng, kWrites, kKeySpace,
                            /*qps=*/10000.0),
                "writer");
    f.sim.Spawn(ReshaperFiber(f.sim, *f.rt, frontend, reshaper_rng,
                              /*rounds=*/15, &reshapes),
                "reshaper");
    // Writer needs ~25ms, reshaper ~30ms; drain well past both.
    f.sim.RunFor(Duration::Millis(120));

    // Conservation: every offered request accounted exactly once.
    ASSERT_EQ(frontend.offered(), kWrites) << "seed " << seed;
    ASSERT_EQ(frontend.ok_in_slo() + frontend.ok_late() + frontend.failed(),
              frontend.offered())
        << "seed " << seed;
    const int64_t succeeded = frontend.ok_in_slo() + frontend.ok_late();

    // Exactly-once: total apply count == successful writes. A lost write
    // (dropped payload) makes this too small; a double apply (dedup state
    // lost in a reshape) makes it too big.
    int64_t total_applies = 0;
    for (const auto& shard : frontend.shards()) {
      const auto* p = f.rt->UnsafeGet<FencedKvProclet>(shard.id());
      ASSERT_NE(p, nullptr);
      for (uint64_t k = 0; k < kKeySpace; ++k) {
        total_applies += p->ApplyCount(k);
      }
    }
    EXPECT_EQ(total_applies, succeeded) << "seed " << seed;

    // Coverage: ranges partition the hash space...
    const auto shards = frontend.SampleShards(f.sim.Now());
    ASSERT_FALSE(shards.empty());
    EXPECT_EQ(shards.front().range_begin, 0u) << "seed " << seed;
    EXPECT_EQ(shards.back().range_end, UINT64_MAX) << "seed " << seed;
    for (size_t i = 0; i + 1 < shards.size(); ++i) {
      EXPECT_EQ(shards[i].range_end, shards[i + 1].range_begin)
          << "seed " << seed;
    }
    // ...and each key has exactly one owner; a written key's value lives
    // there and nowhere else.
    for (uint64_t k = 0; k < kKeySpace; ++k) {
      int owners = 0;
      int holders = 0;
      for (const auto& shard : frontend.shards()) {
        const auto* p = f.rt->UnsafeGet<FencedKvProclet>(shard.id());
        if (p->Owns(k)) {
          ++owners;
          if (p->Get(k).ok()) {
            ++holders;
          }
        }
      }
      EXPECT_EQ(owners, 1) << "seed " << seed << " key " << k;
      EXPECT_LE(holders, owners) << "seed " << seed << " key " << k;
    }
    total_reshapes += reshapes;
  }
  // The property is vacuous if reshapes never actually interleaved.
  EXPECT_GT(total_reshapes, 10);
}

// Spawn needs a Task<>; this wrapper parks the split's status for the test
// body to assert on after the crash races it.
Task<> DoSplit(KvFrontend& frontend, Ctx ctx, ProcletId donor, uint64_t point,
               MachineId target, Status* out) {
  auto split = frontend.SplitShard(ctx, donor, point, target);
  *out = co_await std::move(split);
}

// Shared setup for the crash-mid-reshape trio: 2 shards, 40 acked writes,
// a delay spike stretching the donor->target copy so a crash scheduled
// ~1ms into the split is guaranteed to land between ExtractUpperRange and
// the payload install on the far side.
struct MidSplitCrash {
  Fixture f;
  FaultInjector faults{f.sim, f.cluster};
  std::unique_ptr<KvFrontend> frontend;
  ProcletId donor = 0;
  ProcletId other = 0;
  MachineId donor_machine = kInvalidMachineId;
  MachineId target = kInvalidMachineId;
  Status split_status = Status::Ok();
  static constexpr uint64_t kKeys = 40;

  explicit MidSplitCrash(bool unsafe_reshape) {
    f.rt->AttachFaultInjector(faults);
    KvFrontendOptions opt;
    opt.shards = 2;
    opt.unsafe_reshape_for_test = unsafe_reshape;
    frontend = std::make_unique<KvFrontend>(*f.rt, opt);
    EXPECT_TRUE(f.sim.BlockOn(frontend->Start(f.rt->CtxOn(0))).ok());
    for (uint64_t k = 0; k < kKeys; ++k) {
      f.sim.BlockOn(frontend->Serve(k, /*is_read=*/false));
    }
    EXPECT_EQ(frontend->failed(), 0);

    donor = frontend->shards()[0].id();
    other = frontend->shards()[1].id();
    donor_machine = f.rt->LocationOf(donor);
    // A host with no shard on it: the split target.
    for (MachineId m = 1; m < f.rt->cluster().size(); ++m) {
      if (m != donor_machine && m != f.rt->LocationOf(other)) {
        target = m;
        break;
      }
    }
    EXPECT_NE(target, kInvalidMachineId);
    faults.ScheduleDelaySpike(f.sim.Now(), donor_machine, target,
                              /*extra=*/Duration::Millis(5),
                              /*duration=*/Duration::Millis(20));
  }

  void StartSplit() {
    const Result<uint64_t> point = frontend->SuggestSplitPoint(donor);
    ASSERT_TRUE(point.ok());
    f.sim.Spawn(DoSplit(*frontend, f.rt->CtxOn(0), donor, *point, target,
                        &split_status),
                "racing_split");
    f.sim.RunFor(Duration::Millis(1));  // gate + extract done, copy in flight
  }
};

TEST(ReshapeCrashSafetyTest, TargetCrashMidCopyRollsBackEveryAckedWrite) {
  MidSplitCrash t(/*unsafe_reshape=*/false);
  t.StartSplit();
  t.faults.FailNow(t.target);
  t.f.sim.RunFor(Duration::Millis(40));

  // The split failed and rolled the extracted range back into the donor:
  // the table looks exactly like the split never happened.
  EXPECT_FALSE(t.split_status.ok());
  EXPECT_EQ(t.frontend->reshape_rollbacks(), 1);
  EXPECT_EQ(t.frontend->shards().size(), 2u);
  EXPECT_TRUE(t.frontend->TableFullyLive());

  // No acked write lost, none double-applied.
  for (uint64_t k = 0; k < MidSplitCrash::kKeys; ++k) {
    int owners = 0;
    for (const auto& shard : t.frontend->shards()) {
      const auto* p = t.f.rt->UnsafeGet<FencedKvProclet>(shard.id());
      ASSERT_NE(p, nullptr);
      if (p->Owns(k)) {
        ++owners;
        EXPECT_TRUE(p->Get(k).ok()) << "key " << k;
        EXPECT_EQ(p->ApplyCount(k), 1) << "key " << k;
      }
    }
    EXPECT_EQ(owners, 1) << "key " << k;
  }
}

TEST(ReshapeCrashSafetyTest, DonorCrashMidCopyDiscardsOrphanAndRepairs) {
  // A donor crash alone does not lose the payload: the bytes left the NIC
  // before the host died, so the copy delivers and the split completes
  // (the fabric checks only the DESTINATION at delivery). The discard path
  // needs the copy to fail with the rollback target already gone — crash
  // the target mid-copy (copy fails), then the donor (rollback impossible).
  MidSplitCrash t(/*unsafe_reshape=*/false);
  t.StartSplit();
  t.faults.FailNow(t.target);
  t.f.sim.RunFor(Duration::Millis(1));
  t.faults.FailNow(t.donor_machine);
  t.f.sim.RunFor(Duration::Millis(40));

  // The donor died with its data — that loss is legal (no replication) —
  // but the orphan half must be fence-aborted, not installed: installing
  // it would resurrect a stale fragment of a dead shard.
  EXPECT_FALSE(t.split_status.ok());
  EXPECT_EQ(t.frontend->reshape_payload_discards(), 1);
  EXPECT_EQ(t.frontend->reshape_rollbacks(), 0);

  // RepairLostShards replaces the dead routing entry with a fresh empty
  // shard; the table must return to fully live.
  for (int i = 0; i < 10 && !t.frontend->TableFullyLive(); ++i) {
    t.f.sim.BlockOn(t.frontend->RepairLostShards(t.f.rt->CtxOn(0)));
    t.f.sim.RunFor(Duration::Millis(3));
  }
  EXPECT_TRUE(t.frontend->TableFullyLive());
  EXPECT_GE(t.frontend->repairs(), 1);

  // Coverage: the surviving ranges still partition the hash space.
  const auto shards = t.frontend->SampleShards(t.f.sim.Now());
  ASSERT_FALSE(shards.empty());
  EXPECT_EQ(shards.front().range_begin, 0u);
  EXPECT_EQ(shards.back().range_end, UINT64_MAX);
  for (size_t i = 0; i + 1 < shards.size(); ++i) {
    EXPECT_EQ(shards[i].range_end, shards[i + 1].range_begin);
  }

  // Keys owned by the untouched shard survive exactly once.
  const auto* survivor = t.f.rt->UnsafeGet<FencedKvProclet>(t.other);
  ASSERT_NE(survivor, nullptr);
  int survivor_keys = 0;
  for (uint64_t k = 0; k < MidSplitCrash::kKeys; ++k) {
    if (survivor->Owns(k)) {
      ++survivor_keys;
      EXPECT_TRUE(survivor->Get(k).ok()) << "key " << k;
      EXPECT_EQ(survivor->ApplyCount(k), 1) << "key " << k;
    }
  }
  EXPECT_GT(survivor_keys, 0);
}

TEST(ReshapeCrashSafetyTest, UnsafeModeDemonstratesTheLossTheseTestsPin) {
  // Teeth check: with the pre-hardening blind install, the same crash
  // vaporizes the extracted range — acked writes and all. If this test
  // ever starts passing the full-presence assertion, the unsafe path has
  // quietly stopped reproducing the bug and the hardened tests above have
  // lost their witness.
  MidSplitCrash t(/*unsafe_reshape=*/true);
  t.StartSplit();
  t.faults.FailNow(t.target);
  t.f.sim.RunFor(Duration::Millis(40));

  EXPECT_EQ(t.frontend->reshape_rollbacks(), 0);
  int64_t live_applies = 0;
  for (const auto& shard : t.frontend->shards()) {
    if (t.f.rt->IsLost(shard.id())) {
      continue;  // the limbo corpse the blind install "succeeded" into
    }
    const auto* p = t.f.rt->UnsafeGet<FencedKvProclet>(shard.id());
    if (p == nullptr) {
      continue;
    }
    for (uint64_t k = 0; k < MidSplitCrash::kKeys; ++k) {
      live_applies += p->ApplyCount(k);
    }
  }
  // Strictly fewer applies than acked writes: data went missing.
  EXPECT_LT(live_applies, static_cast<int64_t>(MidSplitCrash::kKeys));
}

}  // namespace
}  // namespace quicksand
