// Property: memoization is semantically transparent.
//
// 1. Under randomized chaos schedules aimed at the cache's host machines —
//    crashes, revocations, partitions, link loss — a memoized invocation
//    that succeeds returns exactly what the unmemoized function returns.
//    Lost shards, harvests, and unreachable hosts may cost hit rate, never
//    correctness.
// 2. Harvesting the cache (the evacuator's cache-first path) must never
//    lose an acked non-memo write: the KV shards' data survives even when
//    every cache shard on the machine is dropped.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "quicksand/chaos/schedule.h"
#include "quicksand/common/bytes.h"
#include "quicksand/common/random.h"
#include "quicksand/memo/memo_harvester.h"
#include "quicksand/memo/memoized.h"
#include "quicksand/sched/evacuator.h"
#include "quicksand/serving/kv_frontend.h"

namespace quicksand {
namespace {

// The pure function under memoization. Deterministic on its argument, so
// the oracle is trivial: Squiggle(x) must ALWAYS equal 31 * x + 11.
class SquiggleProclet : public ProcletBase {
 public:
  static constexpr ProcletKind kKind = ProcletKind::kCompute;

  explicit SquiggleProclet(const ProcletInit& init) : ProcletBase(init) {}

  Task<int64_t> Squiggle(int64_t x) {
    ++calls_;
    co_await runtime().sim().Sleep(Duration::Micros(50));
    co_return 31 * x + 11;
  }

  int64_t calls() const { return calls_; }

 private:
  int64_t calls_ = 0;
};

// Remaps every fault target into `hosts` so the chaos only ever hits cache
// machines (and never the driver, the compute target, or the KV shards).
ChaosSchedule RemapTargets(ChaosSchedule schedule,
                           const std::vector<MachineId>& hosts) {
  std::vector<ChaosEvent> kept;
  for (ChaosEvent e : schedule.events) {
    e.a = hosts[e.a % hosts.size()];
    e.b = hosts[e.b % hosts.size()];
    const bool pairwise = e.kind == ChaosEventKind::kPartitionOneWay ||
                          e.kind == ChaosEventKind::kPartition ||
                          e.kind == ChaosEventKind::kLinkLoss ||
                          e.kind == ChaosEventKind::kDelaySpike;
    if (pairwise && e.a == e.b) {
      continue;  // remap collapsed the pair; a self-link is meaningless
    }
    kept.push_back(e);
  }
  schedule.events = std::move(kept);
  return schedule;
}

TEST(MemoTransparencyTest, MemoizedMatchesOracleUnderChaos) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Simulator sim;
    Cluster cluster{sim};
    for (int i = 0; i < 5; ++i) {
      MachineSpec spec;
      spec.cores = 2;
      spec.memory_bytes = 1_GiB;
      cluster.AddMachine(spec);
    }
    Runtime rt(sim, cluster);
    FaultInjector faults(sim, cluster);
    rt.AttachFaultInjector(faults);

    // Machine 1 hosts the function; 2..4 host cache shards and absorb all
    // the chaos.
    const std::vector<MachineId> memo_hosts = {2, 3, 4};
    PlacementRequest req;
    req.kind = ProcletKind::kCompute;
    req.heap_bytes = 4096;
    req.pinned = MachineId{1};
    Ref<SquiggleProclet> target =
        *sim.BlockOn(rt.Create<SquiggleProclet>(rt.CtxOn(0), req));

    MemoDirectoryOptions mopt;
    mopt.shards = 3;
    mopt.hosts = memo_hosts;
    MemoDirectory dir(rt, mopt);
    ASSERT_TRUE(sim.BlockOn(dir.Start(rt.CtxOn(0))).ok());
    MemoCache cache(rt, dir);

    MemoHarvester harvester(rt);
    harvester.Register(&dir);
    EmergencyEvacuator evacuator(rt);
    evacuator.AttachMemoHarvester(&harvester);
    evacuator.Arm(faults);

    ChaosScheduleOptions copt;
    copt.machines = 5;
    copt.horizon = Duration::Millis(40);
    copt.events = 8;
    const ChaosSchedule schedule =
        RemapTargets(GenerateSchedule(seed, copt), memo_hosts);
    ApplySchedule(faults, schedule, sim.Now());

    Rng rng(seed * 977 + 13);
    int64_t served = 0;
    for (int step = 0; step < 200; ++step) {
      sim.RunFor(Duration::Micros(250));
      const int64_t x = static_cast<int64_t>(rng.NextBounded(24));
      auto call = Memoized<int64_t>(
          cache, rt.CtxOn(0), target,
          MemoKeyBuilder().Fn(0x5157).U64(static_cast<uint64_t>(x)).Build(0),
          [x](SquiggleProclet& p) -> Task<int64_t> { return p.Squiggle(x); });
      const Result<int64_t> got = sim.BlockOn(std::move(call));
      // The compute host (m1) is never a fault target, so the call itself
      // must succeed — and its value must be the oracle's, no matter what
      // state the cache tier is in.
      ASSERT_TRUE(got.ok()) << "seed " << seed << " step " << step << ": "
                            << got.status().ToString();
      ASSERT_EQ(*got, 31 * x + 11) << "seed " << seed << " step " << step;
      ++served;
      // Occasionally harvest a cache machine by hand, on top of whatever
      // the schedule is doing.
      if (rng.NextDouble() < 0.05) {
        const MachineId victim =
            memo_hosts[rng.NextBounded(memo_hosts.size())];
        (void)sim.BlockOn(harvester.HarvestMachine(victim));
      }
    }
    EXPECT_EQ(served, 200);
    // The memo tier must have been exercised (some hits), and the function
    // must have run strictly fewer times than the number of calls — i.e.
    // the cache worked — while chaos guarantees it also ran more than the
    // 24 distinct arguments would need in a fault-free world is NOT
    // guaranteed, so only the upper bound is asserted.
    SquiggleProclet* p = rt.UnsafeGet<SquiggleProclet>(target.id());
    ASSERT_NE(p, nullptr);
    EXPECT_LT(p->calls(), 200);
    EXPECT_GT(dir.hits() + dir.stale_hits(), 0);
  }
}

TEST(MemoTransparencyTest, HarvestNeverLosesAckedWrites) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Simulator sim;
    Cluster cluster{sim};
    for (int i = 0; i < 5; ++i) {
      MachineSpec spec;
      spec.cores = 2;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    Runtime rt(sim, cluster);
    FaultInjector faults(sim, cluster);
    rt.AttachFaultInjector(faults);

    KvFrontendOptions fopt;
    fopt.shards = 2;
    fopt.slo = Duration::Millis(2);
    fopt.service_time = Duration::Micros(20);
    fopt.memo_reads = true;
    fopt.memo_staleness = Duration::Millis(10);
    KvFrontend frontend(rt, fopt);
    ASSERT_TRUE(sim.BlockOn(frontend.Start(rt.CtxOn(0))).ok());

    // Cache shards live only on machines that host no KV shard; all chaos
    // is aimed there. The KV tier itself stays healthy — this test is about
    // the cache tier's failures staying invisible.
    std::vector<MachineId> kv_hosts;
    for (const auto& shard : frontend.shards()) {
      kv_hosts.push_back(rt.LocationOf(shard.id()));
    }
    std::vector<MachineId> memo_hosts;
    for (MachineId m = 1; m < cluster.size(); ++m) {
      if (std::find(kv_hosts.begin(), kv_hosts.end(), m) == kv_hosts.end()) {
        memo_hosts.push_back(m);
      }
    }
    ASSERT_GE(memo_hosts.size(), 2u);

    MemoDirectoryOptions mopt;
    mopt.shards = 4;
    mopt.hosts = memo_hosts;
    MemoDirectory dir(rt, mopt);
    ASSERT_TRUE(sim.BlockOn(dir.Start(rt.CtxOn(0))).ok());
    frontend.AttachMemo(&dir);

    MemoHarvester harvester(rt);
    harvester.Register(&dir);
    EmergencyEvacuator evacuator(rt);
    evacuator.AttachMemoHarvester(&harvester);
    evacuator.Arm(faults);

    ChaosScheduleOptions copt;
    copt.machines = 5;
    copt.horizon = Duration::Millis(50);
    copt.events = 6;
    copt.max_crashes = 1;
    const ChaosSchedule schedule =
        RemapTargets(GenerateSchedule(seed * 31 + 7, copt), memo_hosts);
    ApplySchedule(faults, schedule, sim.Now());

    // Mixed read/write traffic; remember every acked write.
    Rng rng(seed);
    std::unordered_map<uint64_t, bool> acked;
    for (int step = 0; step < 300; ++step) {
      sim.RunFor(Duration::Micros(150));
      const uint64_t key = rng.NextBounded(48);
      const bool is_read = rng.NextDouble() < 0.6;
      const bool ok = sim.BlockOn(frontend.ServeDetailed(key, is_read));
      if (!is_read && ok) {
        acked[key] = true;
      }
    }
    sim.RunFor(Duration::Millis(20));

    // Every acked write must still be readable from the KV tier with its
    // canonical value, however badly the cache tier was mauled.
    int verified = 0;
    for (const auto& [key, _] : acked) {
      bool found = false;
      for (const auto& shard : frontend.shards()) {
        FencedKvProclet* p = rt.UnsafeGet<FencedKvProclet>(shard.id());
        if (p == nullptr) {
          continue;
        }
        const Result<int64_t> got = p->Get(key);
        if (got.ok()) {
          EXPECT_EQ(*got, static_cast<int64_t>(key) * 31 + 7)
              << "seed " << seed << " key " << key;
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "seed " << seed << ": acked write to key " << key
                         << " lost";
      verified += found ? 1 : 0;
    }
    EXPECT_GT(verified, 0);
  }
}

}  // namespace
}  // namespace quicksand
