// Property fuzz: sharded data structures behave like their in-memory
// references under randomized operation streams interleaved with
// migrations and split/merge maintenance.

#include <deque>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "quicksand/adapt/shard_maintenance.h"
#include "quicksand/common/bytes.h"
#include "quicksand/common/random.h"
#include "quicksand/ds/sharded_queue.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 3) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 4;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ctx ctx() { return rt->CtxOn(0); }
};

class VectorFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorFuzzTest, MatchesReferenceVector) {
  Fixture f;
  Rng rng(GetParam());
  ShardedVector<int64_t>::Options options;
  options.max_shard_bytes = 256;  // aggressive sharding
  auto vec = *f.sim.BlockOn(ShardedVector<int64_t>::Create(f.ctx(), options));
  std::vector<int64_t> reference;

  for (int step = 0; step < 400; ++step) {
    const uint64_t op = rng.NextBounded(100);
    if (op < 45) {  // push
      const int64_t value = static_cast<int64_t>(rng.Next() % 1000000);
      Result<uint64_t> idx = f.sim.BlockOn(vec.PushBack(f.ctx(), value));
      ASSERT_TRUE(idx.ok());
      ASSERT_EQ(*idx, reference.size());
      reference.push_back(value);
    } else if (op < 65 && !reference.empty()) {  // get
      const uint64_t i = rng.NextBounded(reference.size());
      Result<int64_t> v = f.sim.BlockOn(vec.Get(f.ctx(), i));
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, reference[i]);
    } else if (op < 80 && !reference.empty()) {  // set
      const uint64_t i = rng.NextBounded(reference.size());
      const int64_t value = static_cast<int64_t>(rng.Next() % 1000000);
      ASSERT_TRUE(f.sim.BlockOn(vec.Set(f.ctx(), i, value)).ok());
      reference[i] = value;
    } else if (op < 90) {  // migrate a random shard
      f.sim.BlockOn(vec.router().Refresh(f.ctx()));
      const auto& shards = vec.router().cached_shards();
      if (!shards.empty()) {
        const auto& s = shards[rng.NextBounded(shards.size())];
        const MachineId target = static_cast<MachineId>(rng.NextBounded(3));
        (void)f.sim.BlockOn(f.rt->Migrate(s.proclet, target));
      }
    } else {  // maintenance (splits under the aggressive max, occasional merges)
      f.sim.BlockOn(MaintainShardedVector(f.ctx(), vec, /*max=*/256, /*min=*/64));
    }
  }

  // Full-content comparison at the end.
  Result<uint64_t> size = f.sim.BlockOn(vec.Size(f.ctx()));
  ASSERT_TRUE(size.ok());
  ASSERT_EQ(*size, reference.size());
  Result<std::vector<int64_t>> all =
      f.sim.BlockOn(vec.GetRange(f.ctx(), 0, reference.size()));
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ((*all)[i], reference[i]) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorFuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

class MapFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MapFuzzTest, MatchesReferenceMap) {
  Fixture f;
  Rng rng(GetParam());
  auto map = *f.sim.BlockOn(ShardedMap<int64_t, int64_t>::Create(f.ctx()));
  std::map<int64_t, int64_t> reference;

  for (int step = 0; step < 400; ++step) {
    const uint64_t op = rng.NextBounded(100);
    const int64_t key = static_cast<int64_t>(rng.NextBounded(200));  // collisions
    if (op < 40) {  // put
      const int64_t value = static_cast<int64_t>(rng.Next() % 1000000);
      ASSERT_TRUE(f.sim.BlockOn(map.Put(f.ctx(), key, value)).ok());
      reference[key] = value;
    } else if (op < 60) {  // get
      Result<int64_t> v = f.sim.BlockOn(map.Get(f.ctx(), key));
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
      } else {
        ASSERT_TRUE(v.ok());
        EXPECT_EQ(*v, it->second);
      }
    } else if (op < 75) {  // erase
      const Status s = f.sim.BlockOn(map.Erase(f.ctx(), key));
      if (reference.erase(key) > 0) {
        EXPECT_TRUE(s.ok());
      } else {
        EXPECT_EQ(s.code(), StatusCode::kNotFound);
      }
    } else if (op < 88) {  // migrate a shard
      f.sim.BlockOn(map.router().Refresh(f.ctx()));
      const auto& shards = map.router().cached_shards();
      if (!shards.empty()) {
        const auto& s = shards[rng.NextBounded(shards.size())];
        (void)f.sim.BlockOn(
            f.rt->Migrate(s.proclet, static_cast<MachineId>(rng.NextBounded(3))));
      }
    } else {  // maintenance with tight shard budget
      f.sim.BlockOn(MaintainShardedMap(f.ctx(), map, /*max=*/600, /*min=*/100));
    }
  }

  Result<int64_t> size = f.sim.BlockOn(map.Size(f.ctx()));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, static_cast<int64_t>(reference.size()));
  Result<std::vector<std::pair<int64_t, int64_t>>> items =
      f.sim.BlockOn(map.Items(f.ctx()));
  ASSERT_TRUE(items.ok());
  std::map<int64_t, int64_t> scanned(items->begin(), items->end());
  EXPECT_EQ(scanned, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapFuzzTest,
                         ::testing::Values(111, 222, 333, 444, 555, 666));

class QueueFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueueFuzzTest, FifoAndConservationUnderMigration) {
  Fixture f;
  Rng rng(GetParam());
  ShardedQueue<int64_t>::Options options;
  options.max_segment_bytes = 256;
  auto queue = *f.sim.BlockOn(ShardedQueue<int64_t>::Create(f.ctx(), options));
  std::deque<int64_t> reference;
  int64_t next_value = 0;

  for (int step = 0; step < 500; ++step) {
    const uint64_t op = rng.NextBounded(100);
    if (op < 50) {  // push
      ASSERT_TRUE(f.sim.BlockOn(queue.Push(f.ctx(), next_value)).ok());
      reference.push_back(next_value);
      ++next_value;
    } else if (op < 85) {  // pop batch
      const int64_t ask = static_cast<int64_t>(1 + rng.NextBounded(8));
      Result<std::vector<int64_t>> batch =
          f.sim.BlockOn(queue.TryPopBatch(f.ctx(), ask));
      ASSERT_TRUE(batch.ok());
      for (int64_t v : *batch) {
        ASSERT_FALSE(reference.empty());
        EXPECT_EQ(v, reference.front());
        reference.pop_front();
      }
    } else {  // migrate a segment
      f.sim.BlockOn(queue.router().Refresh(f.ctx()));
      const auto& shards = queue.router().cached_shards();
      if (!shards.empty()) {
        const auto& s = shards[rng.NextBounded(shards.size())];
        (void)f.sim.BlockOn(
            f.rt->Migrate(s.proclet, static_cast<MachineId>(rng.NextBounded(3))));
      }
    }
  }

  // Drain fully: the remaining order must match.
  for (;;) {
    Result<std::optional<int64_t>> v = f.sim.BlockOn(queue.TryPop(f.ctx()));
    ASSERT_TRUE(v.ok());
    if (!v->has_value()) {
      break;
    }
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(**v, reference.front());
    reference.pop_front();
  }
  EXPECT_TRUE(reference.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueFuzzTest,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005, 6006));

}  // namespace
}  // namespace quicksand
