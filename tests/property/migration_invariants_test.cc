// Property sweep: resource-accounting invariants hold under arbitrary
// migration sequences.
//
// For any cluster shape and proclet population, after any sequence of
// (possibly failing) migrations:
//   I1. every machine's memory usage equals the sum of heaps it hosts,
//   I2. total heap bytes are conserved,
//   I3. every proclet remains reachable through invocation,
//   I4. failed migrations leave placement unchanged.

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"
#include "quicksand/common/random.h"
#include "quicksand/proclet/memory_proclet.h"

namespace quicksand {
namespace {

struct SweepParam {
  int machines;
  int proclets;
  int64_t min_heap;
  int64_t max_heap;
  uint64_t seed;
};

class MigrationInvariantsTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MigrationInvariantsTest, AccountingHoldsUnderRandomMigrations) {
  const SweepParam param = GetParam();
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < param.machines; ++i) {
    MachineSpec spec;
    spec.cores = 4;
    spec.memory_bytes = 1_GiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  const Ctx ctx = rt.CtxOn(0);
  Rng rng(param.seed);

  std::vector<Ref<MemoryProclet>> proclets;
  int64_t total_heap = 0;
  for (int i = 0; i < param.proclets; ++i) {
    PlacementRequest req;
    req.heap_bytes = rng.NextInRange(param.min_heap, param.max_heap);
    total_heap += req.heap_bytes;
    auto create = rt.Create<MemoryProclet>(ctx, req);
    Result<Ref<MemoryProclet>> ref = sim.BlockOn(std::move(create));
    ASSERT_TRUE(ref.ok());
    proclets.push_back(*ref);
  }

  for (int step = 0; step < 200; ++step) {
    const auto& victim = proclets[rng.NextBounded(proclets.size())];
    const MachineId target =
        static_cast<MachineId>(rng.NextBounded(static_cast<uint64_t>(param.machines)));
    const MachineId before = victim.Location();
    const Status status = sim.BlockOn(rt.Migrate(victim.id(), target));
    if (!status.ok()) {
      EXPECT_EQ(victim.Location(), before);  // I4
    } else {
      EXPECT_EQ(victim.Location(), target);
    }
  }

  // I1: per-machine accounting matches hosted heaps.
  std::vector<int64_t> hosted(cluster.size(), 0);
  int64_t sum = 0;
  for (const auto& ref : proclets) {
    ProcletBase* p = rt.Find(ref.id());
    ASSERT_NE(p, nullptr);
    hosted[p->location()] += p->heap_bytes();
    sum += p->heap_bytes();
  }
  for (MachineId m = 0; m < cluster.size(); ++m) {
    EXPECT_EQ(cluster.machine(m).memory().used(), hosted[m]) << "machine " << m;
  }
  // I2: conservation.
  EXPECT_EQ(sum, total_heap);

  // I3: every proclet still answers invocations.
  for (const auto& ref : proclets) {
    auto call = ref.Call(ctx, [](MemoryProclet& p) -> Task<int64_t> {
      co_return static_cast<int64_t>(p.object_count());
    });
    EXPECT_EQ(sim.BlockOn(std::move(call)), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MigrationInvariantsTest,
    ::testing::Values(SweepParam{2, 4, 1 * kMiB, 8 * kMiB, 1},
                      SweepParam{2, 16, 64 * kKiB, 1 * kMiB, 2},
                      SweepParam{3, 8, 1 * kMiB, 32 * kMiB, 3},
                      SweepParam{4, 32, 4 * kKiB, 256 * kKiB, 4},
                      SweepParam{8, 24, 1 * kMiB, 16 * kMiB, 5},
                      SweepParam{3, 3, 128 * kMiB, 256 * kMiB, 6}));

class ConcurrentMigrationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConcurrentMigrationTest, RacingMigrationsNeverCorruptState) {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < 3; ++i) {
    MachineSpec spec;
    spec.memory_bytes = 1_GiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  const Ctx ctx = rt.CtxOn(0);
  Rng rng(GetParam());

  PlacementRequest req;
  req.heap_bytes = 32 * kMiB;
  auto create = rt.Create<MemoryProclet>(ctx, req);
  Ref<MemoryProclet> proclet = *sim.BlockOn(std::move(create));

  // Fire many overlapping migration attempts; at most one at a time can
  // win, the rest must fail cleanly with Aborted.
  int64_t ok_count = 0;
  int64_t aborted = 0;
  std::vector<Fiber> racers;
  for (int i = 0; i < 12; ++i) {
    const MachineId target = static_cast<MachineId>(rng.NextBounded(3));
    const Duration delay = Duration::Micros(rng.NextInRange(0, 500));
    racers.push_back(sim.Spawn(
        [](Runtime* r, Simulator* s, ProcletId id, MachineId t, Duration d,
           int64_t* ok, int64_t* ab) -> Task<> {
          co_await s->Sleep(d);
          const Status status = co_await r->Migrate(id, t);
          if (status.ok()) {
            ++*ok;
          } else if (status.code() == StatusCode::kAborted) {
            ++*ab;
          }
        }(&rt, &sim, proclet.id(), target, delay, &ok_count, &aborted),
        "racer"));
  }
  sim.BlockOn(JoinAll(std::move(racers)));
  // State consistent afterwards.
  ProcletBase* p = rt.Find(proclet.id());
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->gate_closed());
  EXPECT_EQ(cluster.machine(p->location()).memory().used(), p->heap_bytes());
  auto call = proclet.Call(ctx, [](MemoryProclet& m) -> Task<int64_t> {
    co_return 7;
  });
  EXPECT_EQ(sim.BlockOn(std::move(call)), 7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentMigrationTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace quicksand
