#include "quicksand/serving/kv_frontend.h"

#include <gtest/gtest.h>

#include <tuple>

#include "quicksand/common/bytes.h"
#include "quicksand/serving/workload.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 3, int cores = 2) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = cores;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  // Run the generator, then drain until every offered request is accounted
  // (ok, late, or failed) — Serve fibers must not outlive the fixture.
  void RunAndDrain(OpenLoopLoadGen& gen, KvFrontend& frontend) {
    sim.BlockOn(gen.Run());
    for (int i = 0; i < 100; ++i) {
      const int64_t accounted =
          frontend.ok_in_slo() + frontend.ok_late() + frontend.failed();
      if (accounted >= frontend.offered()) {
        break;
      }
      sim.RunFor(Duration::Millis(10));
    }
    ASSERT_EQ(frontend.ok_in_slo() + frontend.ok_late() + frontend.failed(),
              frontend.offered());
  }
};

KvFrontendOptions LightOptions() {
  KvFrontendOptions opt;
  opt.shards = 4;
  opt.slo = Duration::Millis(2);
  opt.service_time = Duration::Micros(50);
  opt.stats_window = Duration::Millis(50);
  return opt;
}

WorkloadOptions LightLoad(uint64_t seed = 1) {
  WorkloadOptions opt;
  opt.base_qps = 2000.0;  // far below the ~80k qps capacity of 2x2 cores
  opt.keys = 64;
  opt.zipf_s = 0.9;
  opt.read_fraction = 0.8;
  opt.duration = Duration::Millis(50);
  opt.seed = seed;
  return opt;
}

TEST(KvFrontendTest, UncontendedLoadIsServedEntirelyWithinSlo) {
  Fixture f;
  KvFrontend frontend(*f.rt, LightOptions());
  ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());
  ASSERT_EQ(frontend.shards().size(), 4u);
  // Shards avoid the frontend's home machine when others exist.
  for (const auto& shard : frontend.shards()) {
    EXPECT_NE(f.rt->LocationOf(shard.id()), MachineId{0});
  }

  OpenLoopLoadGen gen(f.sim, frontend, LightLoad());
  f.RunAndDrain(gen, frontend);

  EXPECT_EQ(gen.arrivals(), frontend.offered());
  EXPECT_GT(frontend.offered(), 50);  // ~100 expected at 2000 qps x 50ms
  EXPECT_EQ(frontend.failed(), 0);
  EXPECT_EQ(frontend.ok_late(), 0);  // 50us of work against a 2ms SLO
  EXPECT_EQ(frontend.ok_in_slo(), frontend.offered());
  EXPECT_EQ(frontend.sheds_seen(), 0);
  EXPECT_EQ(frontend.deadline_rejections_seen(), 0);
}

TEST(KvFrontendTest, SampleServingReportsWindowedRates) {
  Fixture f;
  KvFrontend frontend(*f.rt, LightOptions());
  ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());
  OpenLoopLoadGen gen(f.sim, frontend, LightLoad());
  f.sim.BlockOn(gen.Run());

  // Sampled mid-run (before the window slides past the traffic): rates are
  // within a factor of a few of the configured load, latencies inside SLO.
  const ServingSample s = frontend.SampleServing(f.sim.Now());
  EXPECT_GT(s.offered_qps, 500.0);
  EXPECT_LT(s.offered_qps, 8000.0);
  EXPECT_GT(s.goodput_qps, 500.0);
  EXPECT_LE(s.p99, LightOptions().slo);
  EXPECT_LE(s.p50, s.p99);

  for (int i = 0; i < 100 && frontend.ok_in_slo() + frontend.ok_late() +
                                     frontend.failed() <
                                 frontend.offered();
       ++i) {
    f.sim.RunFor(Duration::Millis(10));
  }
}

TEST(KvFrontendTest, SameSeedRunsAreBitIdentical) {
  auto run = [](uint64_t seed) {
    Fixture f;
    KvFrontend frontend(*f.rt, LightOptions());
    EXPECT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());
    OpenLoopLoadGen gen(f.sim, frontend, LightLoad(seed));
    f.RunAndDrain(gen, frontend);
    return std::tuple(frontend.offered(), frontend.ok_in_slo(),
                      frontend.retries(), f.sim.Now());
  };
  EXPECT_EQ(run(1), run(1));
  // A different seed produces a different arrival sequence.
  EXPECT_NE(std::get<3>(run(1)), std::get<3>(run(2)));
}

TEST(OpenLoopLoadGenTest, RateProfileComposesDiurnalAndFlash) {
  Fixture f;
  KvFrontend frontend(*f.rt, LightOptions());
  WorkloadOptions opt;
  opt.base_qps = 1000.0;
  opt.diurnal_amplitude = 0.5;
  opt.diurnal_period = Duration::Seconds(1);
  opt.flash_multiplier = 3.0;
  opt.flash_start = SimTime::Zero() + Duration::Millis(600);
  opt.flash_end = SimTime::Zero() + Duration::Millis(700);
  OpenLoopLoadGen gen(f.sim, frontend, opt);

  // Quarter period: sin = 1, so base * 1.5.
  EXPECT_NEAR(gen.RateAt(SimTime::Zero() + Duration::Millis(250)), 1500.0,
              1.0);
  // Inside the flash window: the diurnal value at 650ms
  // (1 + 0.5 * sin(2*pi*0.65) ~= 0.5955) times the 3x flash multiplier.
  EXPECT_NEAR(gen.RateAt(SimTime::Zero() + Duration::Millis(650)), 1786.5,
              2.0);
  // Outside the flash window at the same trough: just the diurnal dip.
  EXPECT_NEAR(gen.RateAt(SimTime::Zero() + Duration::Millis(750)), 500.0,
              1.0);
}

TEST(OpenLoopLoadGenTest, ArrivalCountTracksOfferedRate) {
  Fixture f;
  KvFrontend frontend(*f.rt, LightOptions());
  ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());
  WorkloadOptions opt = LightLoad();
  opt.base_qps = 10000.0;
  opt.duration = Duration::Millis(100);
  OpenLoopLoadGen gen(f.sim, frontend, opt);
  f.RunAndDrain(gen, frontend);
  // ~1000 expected arrivals; Poisson noise is a few percent at this count.
  EXPECT_GT(gen.arrivals(), 800);
  EXPECT_LT(gen.arrivals(), 1200);
}

}  // namespace
}  // namespace quicksand
