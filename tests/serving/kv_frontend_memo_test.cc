#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"
#include "quicksand/memo/memo_directory.h"
#include "quicksand/serving/kv_frontend.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;
  std::unique_ptr<MemoDirectory> memo;

  explicit Fixture(int machines = 4) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 2;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  void StartMemo(MemoDirectoryOptions opt = {}) {
    memo = std::make_unique<MemoDirectory>(*rt, opt);
    ASSERT_TRUE(sim.BlockOn(memo->Start(rt->CtxOn(0))).ok());
  }
};

KvFrontendOptions MemoOptions() {
  KvFrontendOptions opt;
  opt.shards = 2;
  opt.slo = Duration::Millis(2);
  opt.service_time = Duration::Micros(50);
  opt.memo_reads = true;
  opt.memo_staleness = Duration::Millis(10);
  return opt;
}

TEST(KvFrontendMemoTest, RepeatReadIsServedFromMemo) {
  Fixture f;
  f.StartMemo();
  KvFrontend frontend(*f.rt, MemoOptions());
  frontend.AttachMemo(f.memo.get());
  ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());

  // Write populates the key; the first read misses the memo and inserts.
  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(7, /*is_read=*/false)));
  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(7, /*is_read=*/true)));
  EXPECT_EQ(frontend.memo_serves(), 0);
  EXPECT_EQ(f.memo->inserts(), 1);

  // The second read is a fresh memo hit: served without a shard attempt.
  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(7, /*is_read=*/true)));
  EXPECT_EQ(frontend.memo_serves(), 1);
  EXPECT_EQ(frontend.memo_stale_serves(), 0);
  EXPECT_EQ(f.memo->hits(), 1);
}

TEST(KvFrontendMemoTest, WriteInvalidatesCachedRead) {
  Fixture f;
  f.StartMemo();
  KvFrontend frontend(*f.rt, MemoOptions());
  frontend.AttachMemo(f.memo.get());
  ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());

  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(3, false)));
  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(3, true)));  // insert
  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(3, true)));  // memo hit
  ASSERT_EQ(frontend.memo_serves(), 1);

  // A write bumps the key's version salt: the cached entry is no longer
  // fresh, so an unpressured read goes back to the shard (no memo serve,
  // one new insert under the new salt).
  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(3, false)));
  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(3, true)));
  EXPECT_EQ(frontend.memo_serves(), 1);
  EXPECT_EQ(f.memo->inserts(), 2);

  // And once re-inserted, memo serving resumes.
  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(3, true)));
  EXPECT_EQ(frontend.memo_serves(), 2);
}

TEST(KvFrontendMemoTest, NotFoundAnswersAreNegativelyCached) {
  Fixture f;
  f.StartMemo();
  KvFrontend frontend(*f.rt, MemoOptions());
  frontend.AttachMemo(f.memo.get());
  ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());

  // A read of a never-written key serves NotFound from the shard — and
  // that answer IS cached (negative caching), or reads of cold keys would
  // miss forever.
  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(99, true)));
  EXPECT_EQ(f.memo->inserts(), 1);
  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(99, true)));
  EXPECT_EQ(frontend.memo_serves(), 1);

  // The first write to the key invalidates the negative entry like any
  // other: the next read goes to the shard and re-caches the real answer.
  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(99, false)));
  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(99, true)));
  EXPECT_EQ(frontend.memo_serves(), 1);
  EXPECT_EQ(f.memo->inserts(), 2);
  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(99, true)));
  EXPECT_EQ(frontend.memo_serves(), 2);
}

TEST(KvFrontendMemoTest, MemoDisabledByDefault) {
  Fixture f;
  f.StartMemo();
  KvFrontendOptions opt = MemoOptions();
  opt.memo_reads = false;
  KvFrontend frontend(*f.rt, opt);
  frontend.AttachMemo(f.memo.get());
  ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());

  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(1, false)));
  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(1, true)));
  EXPECT_TRUE(f.sim.BlockOn(frontend.ServeDetailed(1, true)));
  EXPECT_EQ(f.memo->inserts(), 0);
  EXPECT_EQ(frontend.memo_serves(), 0);
}

}  // namespace
}  // namespace quicksand
