#include "quicksand/storage/flat_storage.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 4) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.memory_bytes = 2_GiB;
      spec.disk.capacity_bytes = 1_GiB;
      spec.disk.iops = 10000;
      spec.disk.bandwidth_bytes_per_sec = 500'000'000;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ctx ctx() { return rt->CtxOn(0); }

  FlatStorage Make(int proclets) {
    FlatStorage::Options options;
    options.proclets = proclets;
    return *sim.BlockOn(FlatStorage::Create(ctx(), options));
  }
};

TEST(FlatStorageTest, WriteReadRoundTrip) {
  Fixture f;
  FlatStorage storage = f.Make(4);
  for (uint64_t id = 0; id < 32; ++id) {
    EXPECT_TRUE(
        f.sim.BlockOn(storage.Write(f.ctx(), id, "obj" + std::to_string(id))).ok());
  }
  for (uint64_t id = 0; id < 32; ++id) {
    Result<std::string> v = f.sim.BlockOn(storage.Read(f.ctx(), id));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "obj" + std::to_string(id));
  }
}

TEST(FlatStorageTest, MissingObjectIsNotFound) {
  Fixture f;
  FlatStorage storage = f.Make(2);
  EXPECT_EQ(f.sim.BlockOn(storage.Read(f.ctx(), 404)).status().code(),
            StatusCode::kNotFound);
}

TEST(FlatStorageTest, DeleteRemoves) {
  Fixture f;
  FlatStorage storage = f.Make(2);
  EXPECT_TRUE(f.sim.BlockOn(storage.Write(f.ctx(), 1, "x")).ok());
  EXPECT_TRUE(f.sim.BlockOn(storage.Delete(f.ctx(), 1)).ok());
  EXPECT_EQ(f.sim.BlockOn(storage.Read(f.ctx(), 1)).status().code(),
            StatusCode::kNotFound);
}

TEST(FlatStorageTest, ProcletsSpreadAcrossMachines) {
  Fixture f(4);
  FlatStorage storage = f.Make(4);
  std::set<MachineId> machines;
  for (const auto& member : storage.members()) {
    machines.insert(member.Location());
  }
  EXPECT_EQ(machines.size(), 4u);
}

TEST(FlatStorageTest, ObjectsHashAcrossProclets) {
  Fixture f;
  FlatStorage storage = f.Make(4);
  for (uint64_t id = 0; id < 64; ++id) {
    EXPECT_TRUE(f.sim.BlockOn(storage.Write(f.ctx(), id, std::string(100, 'x'))).ok());
  }
  int nonempty = 0;
  for (const auto& member : storage.members()) {
    auto* p = f.rt->UnsafeGet<StorageProclet>(member.id());
    if (p != nullptr && p->object_count() > 0) {
      ++nonempty;
    }
  }
  EXPECT_GE(nonempty, 3);  // hashing spreads 64 objects over 4 proclets
}

Task<Duration> TimedWrites(Fixture& f, FlatStorage& storage, int n, int64_t bytes) {
  const SimTime start = f.sim.Now();
  std::vector<Fiber> writers;
  for (int i = 0; i < n; ++i) {
    writers.push_back(f.sim.Spawn(
        [](FlatStorage* s, Ctx ctx, uint64_t id, int64_t b) -> Task<> {
          auto write = s->Write(ctx, id, std::string(static_cast<size_t>(b), 'x'));
          Status st = co_await std::move(write);
          EXPECT_TRUE(st.ok());
        }(&storage, f.ctx(), static_cast<uint64_t>(i), bytes),
        "writer"));
  }
  co_await JoinAll(std::move(writers));
  co_return f.sim.Now() - start;
}

TEST(FlatStorageTest, MoreProcletsAggregateDiskThroughput) {
  // 64 concurrent 1MB writes: with 1 proclet they serialize on one disk;
  // with 4 proclets on 4 machines they use 4 disks.
  Fixture f1;
  FlatStorage one = f1.Make(1);
  const Duration t_one = f1.sim.BlockOn(TimedWrites(f1, one, 64, 1'000'000));

  Fixture f4;
  FlatStorage four = f4.Make(4);
  const Duration t_four = f4.sim.BlockOn(TimedWrites(f4, four, 64, 1'000'000));

  EXPECT_LT(t_four, t_one * 0.5);  // at least 2x aggregate speedup
}

TEST(FlatStorageTest, StoredBytesAggregates) {
  Fixture f;
  FlatStorage storage = f.Make(3);
  EXPECT_EQ(storage.StoredBytes(*f.rt), 0);
  EXPECT_TRUE(f.sim.BlockOn(storage.Write(f.ctx(), 1, std::string(1000, 'a'))).ok());
  EXPECT_TRUE(f.sim.BlockOn(storage.Write(f.ctx(), 2, std::string(500, 'b'))).ok());
  EXPECT_GE(storage.StoredBytes(*f.rt), 1500);
}

TEST(FlatStorageTest, ShutdownReleasesEverything) {
  Fixture f;
  FlatStorage storage = f.Make(3);
  EXPECT_TRUE(f.sim.BlockOn(storage.Write(f.ctx(), 1, std::string(1000, 'a'))).ok());
  f.sim.BlockOn(storage.Shutdown(f.ctx()));
  f.sim.RunUntilIdle();
  for (MachineId m = 0; m < f.cluster.size(); ++m) {
    EXPECT_EQ(f.cluster.machine(m).disk().capacity().used(), 0);
  }
}

}  // namespace
}  // namespace quicksand
