#include "quicksand/cluster/disk.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"
#include "quicksand/sim/fiber.h"

namespace quicksand {
namespace {

DiskSpec TestSpec() {
  DiskSpec spec;
  spec.capacity_bytes = 1_GiB;
  spec.iops = 100000;                        // 10us per op
  spec.bandwidth_bytes_per_sec = 1'000'000'000;  // 1 GB/s
  return spec;
}

Task<> DoIo(DiskModel& disk, int64_t bytes, Simulator& sim, SimTime& done) {
  co_await disk.Io(bytes);
  done = sim.Now();
}

TEST(DiskModelTest, SmallOpCostsPerOpLatency) {
  Simulator sim;
  DiskModel disk(sim, TestSpec());
  SimTime done;
  sim.Spawn(DoIo(disk, 0, sim, done), "io");
  sim.RunUntilIdle();
  EXPECT_EQ(done - SimTime::Zero(), 10_us);
}

TEST(DiskModelTest, LargeOpPaysBandwidth) {
  Simulator sim;
  DiskModel disk(sim, TestSpec());
  SimTime done;
  // 100 MB at 1 GB/s = 100ms + 10us per-op.
  sim.Spawn(DoIo(disk, 100'000'000, sim, done), "io");
  sim.RunUntilIdle();
  EXPECT_GE(done - SimTime::Zero(), 100_ms);
  EXPECT_LE(done - SimTime::Zero(), 101_ms);
}

TEST(DiskModelTest, OpsSerializeFifo) {
  Simulator sim;
  DiskModel disk(sim, TestSpec());
  SimTime done_a;
  SimTime done_b;
  sim.Spawn(DoIo(disk, 10'000'000, sim, done_a), "a");  // 10ms
  sim.Spawn(DoIo(disk, 10'000'000, sim, done_b), "b");
  sim.RunUntilIdle();
  EXPECT_LT(done_a, done_b);
  EXPECT_GE(done_b - done_a, 10_ms);  // b waited for a
}

TEST(DiskModelTest, IopsLimitThroughputForTinyOps) {
  Simulator sim;
  DiskModel disk(sim, TestSpec());
  std::vector<Fiber> ops;
  for (int i = 0; i < 1000; ++i) {
    ops.push_back(sim.Spawn(disk.Io(64), "tiny"));
  }
  sim.RunUntilIdle();
  // 1000 ops at 100k IOPS = ~10ms regardless of bytes.
  EXPECT_GE(sim.Now() - SimTime::Zero(), 10_ms);
  EXPECT_LE(sim.Now() - SimTime::Zero(), 11_ms);
  EXPECT_EQ(disk.ops_completed(), 1000);
}

TEST(DiskModelTest, CapacityAccountIsIndependentOfIo) {
  Simulator sim;
  DiskModel disk(sim, TestSpec());
  EXPECT_TRUE(disk.capacity().TryCharge(512_MiB));
  EXPECT_TRUE(disk.capacity().TryCharge(512_MiB));
  EXPECT_FALSE(disk.capacity().TryCharge(1));
  disk.capacity().Release(1_GiB);
  EXPECT_EQ(disk.capacity().used(), 0);
}

TEST(DiskModelTest, BusyAccumulates) {
  Simulator sim;
  DiskModel disk(sim, TestSpec());
  sim.Spawn(disk.Io(1'000'000), "io");  // 1ms + 10us
  sim.Spawn(disk.Io(2'000'000), "io");  // 2ms + 10us
  sim.RunUntilIdle();
  EXPECT_EQ(disk.busy(), Duration::Micros(3020));
}

}  // namespace
}  // namespace quicksand
