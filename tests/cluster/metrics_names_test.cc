// The exported-metric registry: every name follows the snake_case rule,
// names are unique, and the live TimeSeries objects agree with the
// registry's stems (so the DESIGN.md table cannot drift from the code).

#include "quicksand/cluster/metrics.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

TEST(MetricsNamesTest, SnakeCaseRuleAcceptsAndRejects) {
  EXPECT_TRUE(IsSnakeCaseMetricName("cpu_util"));
  EXPECT_TRUE(IsSnakeCaseMetricName("cpu_util_m3"));
  EXPECT_TRUE(IsSnakeCaseMetricName("producer_count"));
  EXPECT_TRUE(IsSnakeCaseMetricName("x"));

  EXPECT_FALSE(IsSnakeCaseMetricName(""));
  EXPECT_FALSE(IsSnakeCaseMetricName("CpuUtil"));
  EXPECT_FALSE(IsSnakeCaseMetricName("cpu util"));
  EXPECT_FALSE(IsSnakeCaseMetricName("cpu-util"));
  EXPECT_FALSE(IsSnakeCaseMetricName("_cpu"));
  EXPECT_FALSE(IsSnakeCaseMetricName("cpu_"));
  EXPECT_FALSE(IsSnakeCaseMetricName("cpu__util"));
  EXPECT_FALSE(IsSnakeCaseMetricName("3cpu"));
}

TEST(MetricsNamesTest, EveryRegisteredNameIsSnakeCaseAndUnique) {
  const std::vector<MetricInfo>& metrics = ExportedMetrics();
  ASSERT_FALSE(metrics.empty());
  std::set<std::string> seen;
  for (const MetricInfo& m : metrics) {
    EXPECT_TRUE(IsSnakeCaseMetricName(m.name)) << m.name;
    EXPECT_TRUE(seen.insert(m.name).second) << "duplicate: " << m.name;
    EXPECT_NE(std::string(m.source), "") << m.name;
    EXPECT_NE(std::string(m.description), "") << m.name;
  }
  // The historical offender stays dead: the producer-count series was once
  // exported as "producers".
  EXPECT_EQ(seen.count("producers"), 0u);
  EXPECT_EQ(seen.count("producer_count"), 1u);
}

TEST(MetricsNamesTest, HealthCounterFieldsAreAllRegistered) {
  std::set<std::string> names;
  for (const MetricInfo& m : ExportedMetrics()) {
    names.insert(m.name);
  }
  for (const char* field :
       {"heartbeats_sent", "heartbeats_delivered", "posthumous_heartbeats",
        "suspicions", "false_suspicions", "confirmations", "declared_dead",
        "fenced_migrations", "fenced_rpcs"}) {
    EXPECT_EQ(names.count(field), 1u) << field;
  }
}

TEST(MetricsNamesTest, OverloadAndServingMetricsAreAllRegistered) {
  std::set<std::string> names;
  for (const MetricInfo& m : ExportedMetrics()) {
    names.insert(m.name);
  }
  for (const char* field :
       {"serving_offered_qps", "serving_goodput_qps", "serving_p99_us",
        "rpc_shed", "rpc_deadline_rejected", "rpc_budget_denied_retries",
        "shed_invocations", "deadline_rejected_invocations", "stale_reads"}) {
    EXPECT_EQ(names.count(field), 1u) << field;
  }
}

TEST(MetricsNamesTest, LiveSeriesNamesMatchRegistryStems) {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < 2; ++i) {
    MachineSpec spec;
    spec.cores = 2;
    spec.memory_bytes = 1_GiB;
    cluster.AddMachine(spec);
  }
  ClusterMetrics metrics(sim, cluster, Duration::Millis(1));
  metrics.Start();

  // Per-machine series are the registry stem plus the "_m<i>" suffix, and
  // every live name still passes the naming rule.
  EXPECT_EQ(metrics.cpu_utilization(0).name(), "cpu_util_m0");
  EXPECT_EQ(metrics.cpu_utilization(1).name(), "cpu_util_m1");
  EXPECT_EQ(metrics.memory_utilization(0).name(), "mem_util_m0");
  EXPECT_EQ(metrics.suspected_machines().name(), "suspected_machines");
  for (MachineId m = 0; m < cluster.size(); ++m) {
    EXPECT_TRUE(IsSnakeCaseMetricName(metrics.cpu_utilization(m).name()));
    EXPECT_TRUE(IsSnakeCaseMetricName(metrics.memory_utilization(m).name()));
  }
}

}  // namespace
}  // namespace quicksand
