#include "quicksand/cluster/memory.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

TEST(MemoryAccountTest, ChargeAndRelease) {
  MemoryAccount mem(1_GiB);
  EXPECT_TRUE(mem.TryCharge(512_MiB));
  EXPECT_EQ(mem.used(), 512_MiB);
  EXPECT_EQ(mem.free(), 512_MiB);
  mem.Release(256_MiB);
  EXPECT_EQ(mem.used(), 256_MiB);
}

TEST(MemoryAccountTest, RejectsOvercommit) {
  MemoryAccount mem(1_GiB);
  EXPECT_TRUE(mem.TryCharge(1_GiB));
  EXPECT_FALSE(mem.TryCharge(1));
  EXPECT_EQ(mem.used(), 1_GiB);
}

TEST(MemoryAccountTest, UtilizationFraction) {
  MemoryAccount mem(4_GiB);
  EXPECT_DOUBLE_EQ(mem.utilization(), 0.0);
  EXPECT_TRUE(mem.TryCharge(1_GiB));
  EXPECT_DOUBLE_EQ(mem.utilization(), 0.25);
}

TEST(MemoryAccountTest, HighWatermarkTracksPeak) {
  MemoryAccount mem(1_GiB);
  EXPECT_TRUE(mem.TryCharge(700_MiB));
  mem.Release(500_MiB);
  EXPECT_TRUE(mem.TryCharge(100_MiB));
  EXPECT_EQ(mem.high_watermark(), 700_MiB);
}

TEST(MemoryAccountTest, ZeroChargeAlwaysSucceeds) {
  MemoryAccount mem(1);
  EXPECT_TRUE(mem.TryCharge(1));
  EXPECT_TRUE(mem.TryCharge(0));
}

TEST(MemoryAccountDeathTest, OverReleaseAborts) {
  MemoryAccount mem(1_GiB);
  EXPECT_TRUE(mem.TryCharge(10));
  EXPECT_DEATH(mem.Release(11), "releasing more");
}

}  // namespace
}  // namespace quicksand
