#include <gtest/gtest.h>

#include "quicksand/cluster/cpu.h"
#include "quicksand/sim/simulator.h"

namespace quicksand {
namespace {

Task<> RunCancellableInto(CpuScheduler& cpu, Duration work, int priority,
                          CpuCancelToken& token, Duration& out, Simulator& sim,
                          SimTime& finished_at) {
  out = co_await cpu.RunCancellable(work, priority, token);
  finished_at = sim.Now();
}

TEST(CpuCancelTest, UncancelledRunsToCompletion) {
  Simulator sim;
  CpuScheduler cpu(sim, 1);
  CpuCancelToken token;
  Duration remaining = Duration::Max();
  SimTime finished;
  sim.Spawn(RunCancellableInto(cpu, 5_ms, kPriorityNormal, token, remaining, sim,
                               finished),
            "w");
  sim.RunUntilIdle();
  EXPECT_EQ(remaining, Duration::Zero());
  EXPECT_EQ(finished, SimTime::Zero() + 5_ms);
}

TEST(CpuCancelTest, CancelWhileQueuedReturnsFullRemainder) {
  Simulator sim;
  CpuScheduler cpu(sim, 1);
  CpuCancelToken token;
  // Occupy the core with higher-priority work so the request stays queued.
  sim.Spawn(cpu.Run(20_ms, kPriorityHigh), "hog");
  Duration remaining = Duration::Zero();
  SimTime finished;
  sim.Spawn(RunCancellableInto(cpu, 5_ms, kPriorityNormal, token, remaining, sim,
                               finished),
            "w");
  sim.Schedule(2_ms, [&] { token.Cancel(); });
  sim.RunUntil(SimTime::Zero() + 3_ms);
  // Resumed promptly (not at 20ms) with everything unserviced.
  EXPECT_EQ(remaining, 5_ms);
  EXPECT_LE(finished - SimTime::Zero(), 2_ms + cpu.quantum());
}

TEST(CpuCancelTest, CancelWhileRunningReturnsPartialRemainder) {
  Simulator sim;
  CpuScheduler cpu(sim, 1, /*quantum=*/1_ms);
  CpuCancelToken token;
  Duration remaining = Duration::Zero();
  SimTime finished;
  sim.Spawn(RunCancellableInto(cpu, 10_ms, kPriorityNormal, token, remaining, sim,
                               finished),
            "w");
  sim.Schedule(Duration::Micros(4500), [&] { token.Cancel(); });
  sim.RunUntilIdle();
  // Cancelled mid-slice: completes at the 5ms slice boundary, 5ms left.
  EXPECT_EQ(remaining, 5_ms);
  EXPECT_EQ(finished, SimTime::Zero() + 5_ms);
}

TEST(CpuCancelTest, CancelledTokenFailsFastOnNewRequests) {
  Simulator sim;
  CpuScheduler cpu(sim, 1);
  CpuCancelToken token;
  token.Cancel();
  Duration remaining = Duration::Zero();
  SimTime finished;
  sim.Spawn(RunCancellableInto(cpu, 5_ms, kPriorityNormal, token, remaining, sim,
                               finished),
            "w");
  sim.RunUntilIdle();
  EXPECT_EQ(remaining, 5_ms);
  EXPECT_EQ(finished, SimTime::Zero());
  EXPECT_EQ(cpu.TotalBusy(), Duration::Zero());
}

TEST(CpuCancelTest, ResetRearmsToken) {
  Simulator sim;
  CpuScheduler cpu(sim, 1);
  CpuCancelToken token;
  token.Cancel();
  token.Reset();
  Duration remaining = Duration::Max();
  SimTime finished;
  sim.Spawn(RunCancellableInto(cpu, 2_ms, kPriorityNormal, token, remaining, sim,
                               finished),
            "w");
  sim.RunUntilIdle();
  EXPECT_EQ(remaining, Duration::Zero());
  EXPECT_EQ(finished, SimTime::Zero() + 2_ms);
}

TEST(CpuCancelTest, CancelCoversManyRequests) {
  Simulator sim;
  CpuScheduler cpu(sim, 2);
  CpuCancelToken token;
  std::vector<Duration> remaining(6, Duration::Zero());
  std::vector<SimTime> finished(6);
  for (int i = 0; i < 6; ++i) {
    sim.Spawn(RunCancellableInto(cpu, 10_ms, kPriorityNormal, token, remaining[i],
                                 sim, finished[i]),
              "w");
  }
  sim.Schedule(3_ms, [&] { token.Cancel(); });
  sim.RunUntilIdle();
  Duration total_left = Duration::Zero();
  for (int i = 0; i < 6; ++i) {
    total_left += remaining[i];
    EXPECT_LE(finished[i] - SimTime::Zero(), 3_ms + cpu.quantum());
  }
  // 60ms of demand, ~6ms serviced (2 cores x 3ms) before the cancel.
  EXPECT_GE(total_left, 53_ms);
  EXPECT_LE(total_left, 55_ms);
}

TEST(CpuCancelTest, WorkConservedAcrossCancelAndResubmit) {
  // The remainder pattern used by migration: cancel, resubmit remainder,
  // total busy time must equal the original demand.
  Simulator sim;
  CpuScheduler cpu(sim, 1, 1_ms);
  CpuCancelToken token;
  Duration first_left = Duration::Zero();
  SimTime t1;
  sim.Spawn(RunCancellableInto(cpu, 10_ms, kPriorityNormal, token, first_left, sim, t1),
            "w1");
  sim.Schedule(4_ms, [&] { token.Cancel(); });
  sim.RunUntilIdle();
  ASSERT_EQ(first_left, 6_ms);
  token.Reset();
  Duration second_left = Duration::Max();
  SimTime t2;
  sim.Spawn(RunCancellableInto(cpu, first_left, kPriorityNormal, token, second_left,
                               sim, t2),
            "w2");
  sim.RunUntilIdle();
  EXPECT_EQ(second_left, Duration::Zero());
  EXPECT_EQ(cpu.TotalBusy(), 10_ms);
}

}  // namespace
}  // namespace quicksand
