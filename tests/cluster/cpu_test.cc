#include "quicksand/cluster/cpu.h"

#include <vector>

#include <gtest/gtest.h>

#include "quicksand/sim/simulator.h"

namespace quicksand {
namespace {

Task<> RunWork(CpuScheduler& cpu, Duration work, int priority, Simulator& sim,
               SimTime& done_at) {
  co_await cpu.Run(work, priority);
  done_at = sim.Now();
}

TEST(CpuSchedulerTest, SingleRequestTakesExactlyItsWork) {
  Simulator sim;
  CpuScheduler cpu(sim, 1);
  SimTime done = SimTime::Zero();
  sim.Spawn(RunWork(cpu, 5_ms, kPriorityNormal, sim, done), "w");
  sim.RunUntilIdle();
  EXPECT_EQ(done, SimTime::Zero() + 5_ms);
}

TEST(CpuSchedulerTest, ZeroWorkCompletesInstantly) {
  Simulator sim;
  CpuScheduler cpu(sim, 1);
  SimTime done = SimTime::Max();
  sim.Spawn(RunWork(cpu, Duration::Zero(), kPriorityNormal, sim, done), "w");
  sim.RunUntilIdle();
  EXPECT_EQ(done, SimTime::Zero());
}

TEST(CpuSchedulerTest, TwoRequestsOnOneCoreShareViaRoundRobin) {
  Simulator sim;
  CpuScheduler cpu(sim, 1);
  SimTime done_a = SimTime::Zero();
  SimTime done_b = SimTime::Zero();
  sim.Spawn(RunWork(cpu, 1_ms, kPriorityNormal, sim, done_a), "a");
  sim.Spawn(RunWork(cpu, 1_ms, kPriorityNormal, sim, done_b), "b");
  sim.RunUntilIdle();
  // Processor sharing: both finish around 2ms total; neither before 1ms.
  EXPECT_GE(done_a, SimTime::Zero() + 1_ms);
  EXPECT_GE(done_b, SimTime::Zero() + 1_ms);
  const SimTime last = std::max(done_a, done_b);
  EXPECT_EQ(last, SimTime::Zero() + 2_ms);
}

TEST(CpuSchedulerTest, TwoCoresRunInParallel) {
  Simulator sim;
  CpuScheduler cpu(sim, 2);
  SimTime done_a = SimTime::Zero();
  SimTime done_b = SimTime::Zero();
  sim.Spawn(RunWork(cpu, 3_ms, kPriorityNormal, sim, done_a), "a");
  sim.Spawn(RunWork(cpu, 3_ms, kPriorityNormal, sim, done_b), "b");
  sim.RunUntilIdle();
  EXPECT_EQ(done_a, SimTime::Zero() + 3_ms);
  EXPECT_EQ(done_b, SimTime::Zero() + 3_ms);
}

TEST(CpuSchedulerTest, HighPriorityDelaysLowPriority) {
  Simulator sim;
  CpuScheduler cpu(sim, 1);
  SimTime done_high = SimTime::Zero();
  SimTime done_low = SimTime::Zero();
  // Low-priority work arrives first, then high-priority work preempts at the
  // next quantum boundary.
  sim.Spawn(RunWork(cpu, 10_ms, kPriorityLow, sim, done_low), "low");
  sim.Schedule(1_ms, [&] {
    sim.Spawn(RunWork(cpu, 5_ms, kPriorityHigh, sim, done_high), "high");
  });
  sim.RunUntilIdle();
  // High-priority work finishes ~1ms (arrival) + 5ms (+ <=1 quantum skew).
  EXPECT_LE(done_high, SimTime::Zero() + 6_ms + cpu.quantum());
  EXPECT_EQ(done_low, SimTime::Zero() + 15_ms);  // total work serialized
}

TEST(CpuSchedulerTest, QueueingDelaySignalRisesUnderContention) {
  Simulator sim;
  CpuScheduler cpu(sim, 1);
  // Saturate the core with high-priority work, then submit normal work.
  SimTime done_high = SimTime::Zero();
  SimTime done_normal = SimTime::Zero();
  sim.Spawn(RunWork(cpu, 8_ms, kPriorityHigh, sim, done_high), "high");
  sim.Spawn(RunWork(cpu, 1_ms, kPriorityNormal, sim, done_normal), "normal");
  sim.RunUntilIdle();
  EXPECT_GE(cpu.QueueingDelay(kPriorityNormal), 7_ms);
  EXPECT_LE(cpu.QueueingDelay(kPriorityHigh), cpu.quantum());
}

TEST(CpuSchedulerTest, LoadFactorCountsRunnableWork) {
  Simulator sim;
  CpuScheduler cpu(sim, 2);
  EXPECT_DOUBLE_EQ(cpu.LoadFactor(), 0.0);
  SimTime d1;
  SimTime d2;
  SimTime d3;
  sim.Spawn(RunWork(cpu, 10_ms, kPriorityNormal, sim, d1), "a");
  sim.Spawn(RunWork(cpu, 10_ms, kPriorityNormal, sim, d2), "b");
  sim.Spawn(RunWork(cpu, 10_ms, kPriorityNormal, sim, d3), "c");
  sim.RunUntil(SimTime::Zero() + 1_ms);
  EXPECT_DOUBLE_EQ(cpu.LoadFactor(), 1.5);  // 3 runnable / 2 cores
  sim.RunUntilIdle();
  EXPECT_DOUBLE_EQ(cpu.LoadFactor(), 0.0);
}

TEST(CpuSchedulerTest, UtilizationAccounting) {
  Simulator sim;
  CpuScheduler cpu(sim, 2);
  const SimTime t0 = sim.Now();
  const Duration busy0 = cpu.TotalBusy();
  SimTime done;
  sim.Spawn(RunWork(cpu, 10_ms, kPriorityNormal, sim, done), "w");
  sim.RunUntil(SimTime::Zero() + 10_ms);
  // One of two cores busy for the whole window: 50%.
  EXPECT_NEAR(cpu.UtilizationSince(t0, busy0), 0.5, 0.01);
}

TEST(CpuSchedulerTest, ManyRequestsConserveWork) {
  Simulator sim;
  CpuScheduler cpu(sim, 4);
  std::vector<SimTime> done(16);
  for (int i = 0; i < 16; ++i) {
    sim.Spawn(RunWork(cpu, 1_ms, kPriorityNormal, sim, done[i]), "w");
  }
  sim.RunUntilIdle();
  // 16ms of work over 4 cores = 4ms makespan.
  SimTime last = SimTime::Zero();
  for (const SimTime& t : done) {
    last = std::max(last, t);
  }
  EXPECT_EQ(last, SimTime::Zero() + 4_ms);
  EXPECT_EQ(cpu.TotalBusy(), 16_ms);
}

TEST(CpuSchedulerTest, SubQuantumWorkCompletesEarly) {
  Simulator sim;
  CpuScheduler cpu(sim, 1, 100_us);
  SimTime done;
  sim.Spawn(RunWork(cpu, 30_us, kPriorityNormal, sim, done), "w");
  sim.RunUntilIdle();
  EXPECT_EQ(done, SimTime::Zero() + 30_us);
}

}  // namespace
}  // namespace quicksand
