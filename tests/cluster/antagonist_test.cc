#include "quicksand/cluster/antagonist.h"

#include <gtest/gtest.h>

#include "quicksand/cluster/cluster.h"
#include "quicksand/cluster/metrics.h"
#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

TEST(PhasedAntagonistTest, BusyAtFollowsSquareWave) {
  Simulator sim;
  Cluster cluster(sim);
  MachineSpec spec;
  spec.cores = 2;
  const MachineId id = cluster.AddMachine(spec);
  PhasedAntagonistConfig cfg;
  cfg.busy = 10_ms;
  cfg.idle = 10_ms;
  PhasedAntagonist antagonist(sim, cluster.machine(id), cfg);
  EXPECT_TRUE(antagonist.BusyAt(SimTime::Zero()));
  EXPECT_TRUE(antagonist.BusyAt(SimTime::Zero() + 9_ms));
  EXPECT_FALSE(antagonist.BusyAt(SimTime::Zero() + 11_ms));
  EXPECT_TRUE(antagonist.BusyAt(SimTime::Zero() + 21_ms));
}

TEST(PhasedAntagonistTest, PhaseOffsetShiftsWave) {
  Simulator sim;
  Cluster cluster(sim);
  const MachineId id = cluster.AddMachine(MachineSpec{});
  PhasedAntagonistConfig cfg;
  cfg.busy = 10_ms;
  cfg.idle = 10_ms;
  cfg.phase_offset = 10_ms;
  PhasedAntagonist antagonist(sim, cluster.machine(id), cfg);
  EXPECT_FALSE(antagonist.BusyAt(SimTime::Zero() + 5_ms));
  EXPECT_TRUE(antagonist.BusyAt(SimTime::Zero() + 15_ms));
}

TEST(PhasedAntagonistTest, SaturatesAllCoresDuringBusyPhase) {
  Simulator sim;
  Cluster cluster(sim);
  MachineSpec spec;
  spec.cores = 4;
  const MachineId id = cluster.AddMachine(spec);
  Machine& machine = cluster.machine(id);
  PhasedAntagonistConfig cfg;
  cfg.busy = 10_ms;
  cfg.idle = 10_ms;
  PhasedAntagonist antagonist(sim, machine, cfg);
  antagonist.Start();
  sim.RunUntil(SimTime::Zero() + 100_ms);
  // Over 5 full periods the antagonist burns busy/(busy+idle) = 50% of total
  // core time.
  const double util =
      machine.cpu().TotalBusy() / (Duration::Millis(100) * spec.cores);
  EXPECT_NEAR(util, 0.5, 0.02);
}

Task<> FillerWork(Machine& machine, Simulator& sim, int64_t& completed) {
  for (;;) {
    co_await machine.cpu().Run(100_us, kPriorityNormal);
    ++completed;
  }
}

TEST(PhasedAntagonistTest, LowPriorityFillerHarvestsIdleHalf) {
  Simulator sim;
  Cluster cluster(sim);
  MachineSpec spec;
  spec.cores = 2;
  const MachineId id = cluster.AddMachine(spec);
  Machine& machine = cluster.machine(id);
  PhasedAntagonistConfig cfg;
  cfg.busy = 10_ms;
  cfg.idle = 10_ms;
  PhasedAntagonist antagonist(sim, machine, cfg);
  antagonist.Start();
  int64_t completed = 0;
  sim.Spawn(FillerWork(machine, sim, completed), "filler");
  sim.Spawn(FillerWork(machine, sim, completed), "filler");
  sim.RunUntil(SimTime::Zero() + 200_ms);
  // Two filler fibers × 200ms × ~50% idle = ~2000 × 100us tasks.
  EXPECT_GT(completed, 1800);
  EXPECT_LT(completed, 2100);
}

TEST(MemoryAntagonistTest, ChargesAndReleasesSquareWave) {
  Simulator sim;
  Cluster cluster(sim);
  MachineSpec spec;
  spec.memory_bytes = 1_GiB;
  const MachineId id = cluster.AddMachine(spec);
  Machine& machine = cluster.machine(id);
  MemoryAntagonist antagonist(sim, machine, 512_MiB, 10_ms, 10_ms);
  antagonist.Start();
  sim.RunUntil(SimTime::Zero() + 5_ms);
  EXPECT_EQ(machine.memory().used(), 512_MiB);
  sim.RunUntil(SimTime::Zero() + 15_ms);
  EXPECT_EQ(machine.memory().used(), 0);
  sim.RunUntil(SimTime::Zero() + 25_ms);
  EXPECT_EQ(machine.memory().used(), 512_MiB);
}

TEST(ClusterMetricsTest, RecordsUtilizationSeries) {
  Simulator sim;
  Cluster cluster(sim);
  MachineSpec spec;
  spec.cores = 2;
  const MachineId id = cluster.AddMachine(spec);
  Machine& machine = cluster.machine(id);
  ClusterMetrics metrics(sim, cluster, 1_ms);
  metrics.Start();
  PhasedAntagonistConfig cfg;
  cfg.busy = 10_ms;
  cfg.idle = 10_ms;
  PhasedAntagonist antagonist(sim, machine, cfg);
  antagonist.Start();
  sim.RunUntil(SimTime::Zero() + 40_ms);
  const TimeSeries& cpu = metrics.cpu_utilization(id);
  ASSERT_GT(cpu.points().size(), 30u);
  // Busy window samples near 1.0; idle window samples near 0.0.
  EXPECT_GT(cpu.MeanOver(SimTime::Zero() + 2_ms, SimTime::Zero() + 9_ms), 0.9);
  EXPECT_LT(cpu.MeanOver(SimTime::Zero() + 12_ms, SimTime::Zero() + 19_ms), 0.1);
}

TEST(ClusterTest, AggregateAccounting) {
  Simulator sim;
  Cluster cluster(sim);
  MachineSpec a;
  a.cores = 6;
  a.memory_bytes = 4_GiB;
  MachineSpec b;
  b.cores = 40;
  b.memory_bytes = 12_GiB;
  cluster.AddMachine(a);
  cluster.AddMachine(b);
  EXPECT_EQ(cluster.size(), 2u);
  EXPECT_EQ(cluster.total_cores(), 46);
  EXPECT_EQ(cluster.total_memory_bytes(), 16_GiB);
  EXPECT_EQ(cluster.machine(1).spec().cores, 40);
}

}  // namespace
}  // namespace quicksand
