#include "quicksand/autoscale/autoscaler.h"

#include <gtest/gtest.h>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/durability/replication.h"
#include "quicksand/health/failure_detector.h"
#include "quicksand/serving/kv_frontend.h"
#include "quicksand/serving/workload.h"

namespace quicksand {
namespace {

ShardServingSample MakeSample(uint64_t proclet, MachineId machine,
                              int64_t arrivals, uint64_t begin = 0,
                              uint64_t end = UINT64_MAX) {
  ShardServingSample s;
  s.proclet = proclet;
  s.machine = machine;
  s.range_begin = begin;
  s.range_end = end;
  s.arrivals_total = arrivals;
  return s;
}

TEST(LoadStatsCollectorTest, DifferencesCumulativeCountersIntoRates) {
  LoadStatsCollector collector(/*alpha=*/1.0);  // no smoothing: exact rates
  const SimTime t0 = SimTime::FromNanos(0);
  const SimTime t1 = t0 + Duration::Millis(10);
  const SimTime t2 = t1 + Duration::Millis(10);

  collector.Observe(t0, {MakeSample(1, 0, 0), MakeSample(2, 1, 0)});
  EXPECT_DOUBLE_EQ(collector.shards()[0].rate_qps, 0.0);

  // 500 arrivals in 10ms at shard 1 -> 50k qps; shard 2 idle.
  collector.Observe(t1, {MakeSample(1, 0, 500), MakeSample(2, 1, 0)});
  EXPECT_NEAR(collector.shards()[0].rate_qps, 50000.0, 1.0);
  EXPECT_DOUBLE_EQ(collector.shards()[1].rate_qps, 0.0);
  EXPECT_NEAR(collector.MachineRate(0), 50000.0, 1.0);
  EXPECT_DOUBLE_EQ(collector.MachineRate(1), 0.0);

  // Shard 2 vanishes (merged away); shard 3 appears hot: its whole counter
  // is this period's delta, so it is visible immediately.
  collector.Observe(t2, {MakeSample(1, 0, 500), MakeSample(3, 1, 400)});
  ASSERT_EQ(collector.shards().size(), 2u);
  EXPECT_DOUBLE_EQ(collector.shards()[0].rate_qps, 0.0);
  EXPECT_NEAR(collector.shards()[1].rate_qps, 40000.0, 1.0);
}

TEST(SkewDetectorTest, HotNeedsAStreakUnlessNudged) {
  LoadStatsCollector collector(1.0);
  SkewDetectorOptions opt;
  opt.hot_factor = 2.0;
  opt.rate_floor_qps = 100.0;
  opt.hot_streak = 2;
  SkewDetector detector(opt);

  SimTime t = SimTime::FromNanos(0);
  int64_t hot_total = 0;
  auto observe = [&] {
    t = t + Duration::Millis(1);
    hot_total += 100;  // 100k qps at shard 1; the rest idle
    collector.Observe(t, {MakeSample(1, 1, hot_total, 0, 100),
                          MakeSample(2, 2, 0, 100, 200),
                          MakeSample(3, 3, 0, 200, 300),
                          MakeSample(4, 1, 0, 300, 400)});
  };

  observe();
  EXPECT_TRUE(detector.Update(collector).hot.empty());  // baseline: no rates
  observe();
  EXPECT_TRUE(detector.Update(collector).hot.empty());  // streak 1 of 2
  observe();
  const SkewVerdict v = detector.Update(collector);
  ASSERT_EQ(v.hot.size(), 1u);
  EXPECT_EQ(v.hot[0], 1u);

  // A nudge fast-tracks the top shard on the nudged machine: hot on the
  // very first tick of a fresh detector.
  SkewDetector nudged(opt);
  LoadStatsCollector fresh(1.0);
  fresh.Observe(SimTime::FromNanos(0), {MakeSample(1, 1, 0), MakeSample(2, 2, 0)});
  fresh.Observe(SimTime::FromNanos(0) + Duration::Millis(1),
                {MakeSample(1, 1, 200), MakeSample(2, 2, 0)});
  nudged.Nudge(1);
  const SkewVerdict nv = nudged.Update(fresh);
  ASSERT_EQ(nv.hot.size(), 1u);
  EXPECT_EQ(nv.hot[0], 1u);
  EXPECT_EQ(nudged.nudge_promotions(), 1);
}

TEST(ReshapePlannerTest, SplitsHotMigratesAtShardBudgetAndCoolsDown) {
  LoadStatsCollector collector(1.0);
  collector.Observe(SimTime::FromNanos(0),
                    {MakeSample(1, 1, 0, 0, 100), MakeSample(2, 2, 0, 100, 200)});
  collector.Observe(SimTime::FromNanos(0) + Duration::Millis(1),
                    {MakeSample(1, 1, 500, 0, 100),
                     MakeSample(2, 2, 0, 100, 200)});

  SkewVerdict verdict;
  verdict.hot.push_back(1);
  const std::vector<MachineId> candidates = {1, 2, 3};
  const SimTime now = SimTime::FromNanos(0) + Duration::Millis(1);

  ReshapePlannerOptions opt;
  ReshapePlanner planner(opt);
  std::vector<ReshapeAction> actions =
      planner.Plan(now, collector, verdict, candidates);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, ReshapeKind::kSplit);
  EXPECT_EQ(actions[0].shard, 1u);
  // Least-loaded candidate that is not the donor's machine (1 hosts the hot
  // shard; 2 and 3 are idle — either is acceptable, never 1).
  EXPECT_NE(actions[0].target, MachineId{1});

  // Cooldown: the executed shard is left alone.
  planner.NoteExecuted(now, actions[0]);
  EXPECT_TRUE(planner
                  .Plan(now + opt.global_cooldown, collector, verdict,
                        candidates)
                  .empty());

  // At the shard budget, hot shards migrate instead of splitting.
  ReshapePlannerOptions capped;
  capped.max_shards = 2;  // collector already sees 2 shards
  ReshapePlanner capped_planner(capped);
  actions = capped_planner.Plan(now, collector, verdict, candidates);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, ReshapeKind::kMigrate);

  // Calm tick + adjacent cold pair -> one merge, never below min_shards.
  SkewVerdict cold;
  cold.cold = {1, 2};
  ReshapePlanner merge_planner(opt);
  actions = merge_planner.Plan(now, collector, cold, candidates);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, ReshapeKind::kMerge);
  EXPECT_EQ(actions[0].shard, 1u);
  EXPECT_EQ(actions[0].other, 2u);
}

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 4, int cores = 2) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = cores;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }
};

TEST(KvFrontendReshapeTest, SplitPreservesDataAndUpdatesRouting) {
  Fixture f;
  KvFrontendOptions opt;
  opt.shards = 2;
  KvFrontend frontend(*f.rt, opt);
  ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());

  // Write 40 keys spread over both shards.
  for (uint64_t k = 0; k < 40; ++k) {
    f.sim.BlockOn(frontend.Serve(k, /*is_read=*/false));
  }
  ASSERT_EQ(frontend.failed(), 0);

  const ProcletId donor = frontend.shards()[0].id();
  const Result<uint64_t> point = frontend.SuggestSplitPoint(donor);
  ASSERT_TRUE(point.ok());
  const Status split = f.sim.BlockOn(
      frontend.SplitShard(f.rt->CtxOn(0), donor, *point, /*target=*/3));
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(frontend.shards().size(), 3u);

  // Ranges still partition the hash space.
  const auto shards = frontend.SampleShards(f.sim.Now());
  EXPECT_EQ(shards.front().range_begin, 0u);
  EXPECT_EQ(shards.back().range_end, UINT64_MAX);
  for (size_t i = 0; i + 1 < shards.size(); ++i) {
    EXPECT_EQ(shards[i].range_end, shards[i + 1].range_begin);
  }
  EXPECT_EQ(shards[1].machine, MachineId{3});

  // Every key still reads back, through routing.
  for (uint64_t k = 0; k < 40; ++k) {
    f.sim.BlockOn(frontend.Serve(k, /*is_read=*/true));
  }
  EXPECT_EQ(frontend.failed(), 0);

  // Exactly one shard owns (and answers for) each key.
  for (uint64_t k = 0; k < 40; ++k) {
    int owners = 0;
    for (const auto& shard : frontend.shards()) {
      const auto* p = f.rt->UnsafeGet<FencedKvProclet>(shard.id());
      ASSERT_NE(p, nullptr);
      if (p->Owns(k)) {
        ++owners;
        EXPECT_TRUE(p->Get(k).ok());
        EXPECT_EQ(p->ApplyCount(k), 1);
      }
    }
    EXPECT_EQ(owners, 1);
  }
}

TEST(KvFrontendReshapeTest, MergeRejoinsNeighborsWithoutLosingWrites) {
  Fixture f;
  KvFrontendOptions opt;
  opt.shards = 2;
  KvFrontend frontend(*f.rt, opt);
  ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());
  for (uint64_t k = 0; k < 30; ++k) {
    f.sim.BlockOn(frontend.Serve(k, /*is_read=*/false));
  }
  ASSERT_EQ(frontend.failed(), 0);

  const ProcletId left = frontend.shards()[0].id();
  const ProcletId right = frontend.shards()[1].id();
  const Status merged =
      f.sim.BlockOn(frontend.MergeShards(f.rt->CtxOn(0), left, right));
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(frontend.shards().size(), 1u);

  const auto* survivor = f.rt->UnsafeGet<FencedKvProclet>(left);
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->hash_begin(), 0u);
  EXPECT_EQ(survivor->hash_end(), UINT64_MAX);
  EXPECT_EQ(survivor->size(), 30u);
  for (uint64_t k = 0; k < 30; ++k) {
    EXPECT_EQ(survivor->ApplyCount(k), 1);
  }
  // The merged-away shard is destroyed.
  EXPECT_EQ(f.rt->LocationOf(right), kInvalidMachineId);
  // And reads still route.
  for (uint64_t k = 0; k < 30; ++k) {
    f.sim.BlockOn(frontend.Serve(k, /*is_read=*/true));
  }
  EXPECT_EQ(frontend.failed(), 0);
}

TEST(KvFrontendReshapeTest, DurableShardsRefuseReshaping) {
  Fixture f;
  KvFrontendOptions opt;
  opt.shards = 2;
  KvFrontend frontend(*f.rt, opt);
  ReplicationManager replication(*f.rt);
  frontend.AttachReplication(&replication);
  ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());

  const ProcletId shard = frontend.shards()[0].id();
  const Result<uint64_t> point = frontend.SuggestSplitPoint(shard);
  ASSERT_TRUE(point.ok());
  const Status split =
      f.sim.BlockOn(frontend.SplitShard(f.rt->CtxOn(0), shard, *point, 3));
  EXPECT_EQ(split.code(), StatusCode::kFailedPrecondition);
  const Status merged = f.sim.BlockOn(frontend.MergeShards(
      f.rt->CtxOn(0), shard, frontend.shards()[1].id()));
  EXPECT_EQ(merged.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(frontend.shards().size(), 2u);
}

TEST(ReshapeExecutorTest, DefersWhenTheCopyWouldBlowTheSlo) {
  Fixture f;
  KvFrontendOptions opt;
  opt.shards = 2;
  KvFrontend frontend(*f.rt, opt);
  ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());

  // Gate-closed estimate is at least migration_fixed_overhead (200us by
  // default); an SLO budget below that defers every reshape.
  ReshapeExecutorOptions tight;
  tight.slo = Duration::Micros(100);
  tight.max_copy_fraction_of_slo = 0.5;
  ReshapeExecutor executor(*f.rt, frontend, tight);

  ReshapeAction action;
  action.kind = ReshapeKind::kSplit;
  action.shard = frontend.shards()[0].id();
  action.target = 3;
  const ReshapeExecutor::Outcome out = f.sim.BlockOn(
      executor.Execute(f.rt->CtxOn(0), action, /*bytes=*/1 << 20));
  EXPECT_TRUE(out.deferred);
  EXPECT_FALSE(out.executed);
  EXPECT_EQ(executor.deferred(), 1);
  EXPECT_EQ(executor.splits(), 0);
  EXPECT_EQ(frontend.shards().size(), 2u);

  // A generous SLO lets the same action through.
  ReshapeExecutorOptions roomy;
  roomy.slo = Duration::Millis(20);
  ReshapeExecutor roomy_executor(*f.rt, frontend, roomy);
  const ReshapeExecutor::Outcome ok = f.sim.BlockOn(
      roomy_executor.Execute(f.rt->CtxOn(0), action, /*bytes=*/1024));
  EXPECT_TRUE(ok.executed);
  EXPECT_EQ(roomy_executor.splits(), 1);
  EXPECT_EQ(frontend.shards().size(), 3u);
}

TEST(AutoscalerTest, SplitsTheHotShardUnderAFlashCrowd) {
  Fixture f(/*machines=*/4);
  KvFrontendOptions opt;
  opt.shards = 4;
  KvFrontend frontend(*f.rt, opt);
  ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());

  AutoscalerOptions aopt;
  aopt.period = Duration::Millis(1);
  aopt.detector.rate_floor_qps = 100.0;
  aopt.detector.hot_streak = 2;
  aopt.executor.slo = Duration::Millis(20);  // copy guard out of the way
  Autoscaler autoscaler(*f.rt, frontend, aopt);
  autoscaler.Start();

  // Everything lands on key 7: one shard takes the entire offered load.
  WorkloadOptions load;
  load.base_qps = 4000.0;
  load.keys = 64;
  load.zipf_s = 0.0;
  load.read_fraction = 0.0;
  load.duration = Duration::Millis(50);
  load.flash_multiplier = 1.0;
  load.flash_start = SimTime::FromNanos(0);
  load.flash_end = SimTime::Max();
  load.flash_key_fraction = 1.0;
  load.flash_key_begin = 7;
  load.flash_key_end = 8;
  OpenLoopLoadGen gen(f.sim, frontend, load);
  f.sim.BlockOn(gen.Run());
  f.sim.RunFor(Duration::Millis(20));
  autoscaler.Stop();
  f.sim.RunFor(Duration::Millis(5));

  EXPECT_GE(autoscaler.splits(), 1);
  EXPECT_GT(frontend.shards().size(), 4u);
  const AutoscaleSample sample = autoscaler.SampleAutoscale(f.sim.Now());
  EXPECT_EQ(sample.shard_count,
            static_cast<int>(frontend.shards().size()));
  EXPECT_EQ(sample.splits_total, autoscaler.splits());
  // No request was lost to the reshaping.
  EXPECT_EQ(frontend.ok_in_slo() + frontend.ok_late() + frontend.failed(),
            frontend.offered());
}

TEST(SkewDetectorTest, ColdFloorTripsOnAnIdleClusterWhereRelativeCannot) {
  // Post-flash remnants are EVENLY idle: median ~0, so the cluster never
  // counts as busy and relative cold detection is structurally blind. The
  // absolute floor is what unwinds them.
  LoadStatsCollector collector(1.0);
  SkewDetectorOptions relative_only;
  relative_only.cold_streak = 3;
  SkewDetector relative(relative_only);
  SkewDetectorOptions floored = relative_only;
  floored.cold_floor_qps = 50.0;
  SkewDetector absolute(floored);

  SimTime t = SimTime::FromNanos(0);
  for (int tick = 0; tick < 6; ++tick) {
    collector.Observe(t, {MakeSample(1, 1, 0, 0, 100),
                          MakeSample(2, 2, 0, 100, 200),
                          MakeSample(3, 3, 0, 200, 300)});
    t = t + Duration::Millis(1);
    EXPECT_TRUE(relative.Update(collector).cold.empty()) << "tick " << tick;
    const SkewVerdict v = absolute.Update(collector);
    if (tick + 1 >= floored.cold_streak) {
      EXPECT_EQ(v.cold.size(), 3u) << "tick " << tick;
    }
  }
}

WorkloadOptions FlashOnKeySeven(Duration duration) {
  WorkloadOptions load;
  load.base_qps = 4000.0;
  load.keys = 64;
  load.zipf_s = 0.0;
  load.read_fraction = 0.0;
  load.duration = duration;
  load.flash_multiplier = 1.0;
  load.flash_start = SimTime::FromNanos(0);
  load.flash_end = SimTime::Max();
  load.flash_key_fraction = 1.0;
  load.flash_key_begin = 7;
  load.flash_key_end = 8;
  return load;
}

TEST(AutoscalerTest, ColdFloorUnwindsFlashSplitsSoRepeatFlashesDoNotRatchet) {
  Fixture f(/*machines=*/4);
  KvFrontendOptions opt;
  opt.shards = 4;
  KvFrontend frontend(*f.rt, opt);
  ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());

  AutoscalerOptions aopt;
  aopt.period = Duration::Millis(1);
  aopt.detector.rate_floor_qps = 100.0;
  aopt.detector.hot_streak = 2;
  aopt.detector.cold_streak = 4;
  // The flash pushes thousands of qps at one shard; once it passes, every
  // remnant idles far below 200 qps and the floor melts them back down.
  aopt.detector.cold_floor_qps = 200.0;
  aopt.executor.slo = Duration::Millis(20);
  Autoscaler autoscaler(*f.rt, frontend, aopt);
  autoscaler.Start();

  // Flash 1 -> splits; quiet -> the cold floor merges the remnants.
  OpenLoopLoadGen first(f.sim, frontend, FlashOnKeySeven(Duration::Millis(30)));
  f.sim.BlockOn(first.Run());
  const size_t peak_after_first = frontend.shards().size();
  const int64_t splits_after_first = autoscaler.splits();
  EXPECT_GE(splits_after_first, 1);
  EXPECT_GT(peak_after_first, 4u);
  f.sim.RunFor(Duration::Millis(40));
  const size_t after_first_quiet = frontend.shards().size();
  EXPECT_GE(autoscaler.merges(), 1);
  EXPECT_LT(after_first_quiet, peak_after_first);

  // Flash 2, same shape; the count must not ratchet past the first peak.
  OpenLoopLoadGen second(f.sim, frontend, FlashOnKeySeven(Duration::Millis(30)));
  f.sim.BlockOn(second.Run());
  EXPECT_GT(autoscaler.splits(), splits_after_first);
  f.sim.RunFor(Duration::Millis(40));
  autoscaler.Stop();
  f.sim.RunFor(Duration::Millis(5));
  EXPECT_LE(frontend.shards().size(), peak_after_first);
}

FailureDetectorOptions StaysSuspectedOptions() {
  // Fast suspicion, confirmation far beyond the test horizon: the machine
  // stays kSuspected, exercising the health pause rather than dead-machine
  // handling.
  FailureDetectorOptions d;
  d.controller = 0;
  d.heartbeat_period = Duration::Micros(500);
  d.suspect_after = Duration::Millis(2);
  d.confirm_after = Duration::Millis(500);
  d.check_period = Duration::Micros(250);
  return d;
}

TEST(AutoscalerTest, PausesVerdictsForShardsHostedOnSuspectedMachines) {
  Fixture f(/*machines=*/4);
  FaultInjector faults(f.sim, f.cluster);
  KvFrontendOptions opt;
  // 4 shards so the median shard is idle during the flash — with only 2,
  // the hot shard IS the median and the relative bar can never trip.
  opt.shards = 4;
  KvFrontend frontend(*f.rt, opt);
  ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());

  // Find the machine hosting key 7's shard and cut its heartbeat path
  // (one-way, toward the controller): arrivals still reach the shard, but
  // the detector suspects the host.
  MachineId hot_host = kInvalidMachineId;
  for (const auto& shard : frontend.shards()) {
    const auto* p = f.rt->UnsafeGet<FencedKvProclet>(shard.id());
    ASSERT_NE(p, nullptr);
    if (p->Owns(7)) {
      hot_host = f.rt->LocationOf(shard.id());
    }
  }
  ASSERT_NE(hot_host, kInvalidMachineId);
  faults.SchedulePartitionOneWay(f.sim.Now(), hot_host, 0);

  FailureDetector detector(f.sim, f.cluster, StaysSuspectedOptions());
  detector.Start();

  AutoscalerOptions aopt;
  aopt.period = Duration::Millis(2);  // first possible split after suspicion
  aopt.detector.rate_floor_qps = 100.0;
  aopt.detector.hot_streak = 2;
  aopt.executor.slo = Duration::Millis(20);
  Autoscaler autoscaler(*f.rt, frontend, aopt);
  autoscaler.AttachHealth(&detector);
  autoscaler.Start();

  OpenLoopLoadGen gen(f.sim, frontend, FlashOnKeySeven(Duration::Millis(30)));
  f.sim.BlockOn(gen.Run());
  f.sim.RunFor(Duration::Millis(10));
  autoscaler.Stop();
  detector.Stop();
  f.sim.RunFor(Duration::Millis(5));

  EXPECT_EQ(detector.StateOf(hot_host), Health::kSuspected);
  // The hot verdict kept firing, but every one of them was paused: the
  // load estimate is stale and the copy source may be dying.
  EXPECT_EQ(autoscaler.splits(), 0);
  EXPECT_EQ(autoscaler.migrations(), 0);
  EXPECT_GT(autoscaler.health_skips(), 0);
}

TEST(AutoscalerTest, ExcludesSuspectedMachinesFromReshapeTargets) {
  Fixture f(/*machines=*/6);
  FaultInjector faults(f.sim, f.cluster);
  KvFrontendOptions opt;
  opt.shards = 4;  // median stays idle under the flash (see above)
  KvFrontend frontend(*f.rt, opt);
  ASSERT_TRUE(f.sim.BlockOn(frontend.Start(f.rt->CtxOn(0))).ok());

  // Suspect an IDLE machine (hosts nothing): splits must land on the other
  // spare host, never on the suspect.
  std::set<MachineId> hosts;
  for (const auto& shard : frontend.shards()) {
    hosts.insert(f.rt->LocationOf(shard.id()));
  }
  MachineId suspect = kInvalidMachineId;
  for (MachineId m = 1; m < f.rt->cluster().size(); ++m) {
    if (hosts.count(m) == 0) {
      suspect = m;
      break;
    }
  }
  ASSERT_NE(suspect, kInvalidMachineId);
  faults.SchedulePartitionOneWay(f.sim.Now(), suspect, 0);

  FailureDetector detector(f.sim, f.cluster, StaysSuspectedOptions());
  detector.Start();

  AutoscalerOptions aopt;
  aopt.period = Duration::Millis(1);
  aopt.detector.rate_floor_qps = 100.0;
  aopt.detector.hot_streak = 2;
  aopt.executor.slo = Duration::Millis(20);
  Autoscaler autoscaler(*f.rt, frontend, aopt);
  autoscaler.AttachHealth(&detector);
  autoscaler.Start();

  OpenLoopLoadGen gen(f.sim, frontend, FlashOnKeySeven(Duration::Millis(30)));
  f.sim.BlockOn(gen.Run());
  f.sim.RunFor(Duration::Millis(10));
  autoscaler.Stop();
  detector.Stop();
  f.sim.RunFor(Duration::Millis(5));

  EXPECT_EQ(detector.StateOf(suspect), Health::kSuspected);
  EXPECT_GE(autoscaler.splits(), 1);
  for (const auto& shard : frontend.shards()) {
    EXPECT_NE(f.rt->LocationOf(shard.id()), suspect);
  }
}

}  // namespace
}  // namespace quicksand
