#include "quicksand/sharding/shard_index.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  Fixture() {
    cluster.AddMachine(MachineSpec{});
    cluster.AddMachine(MachineSpec{});
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ref<ShardIndexProclet> MakeIndex() {
    PlacementRequest req;
    req.heap_bytes = 4096;
    return *sim.BlockOn(rt->Create<ShardIndexProclet>(rt->CtxOn(0), req));
  }

  ShardIndexProclet* Get(Ref<ShardIndexProclet> ref) {
    return rt->UnsafeGet<ShardIndexProclet>(ref.id());
  }
};

ShardInfo Info(ProcletId id, uint64_t begin, uint64_t end) {
  ShardInfo info;
  info.proclet = id;
  info.begin = begin;
  info.end = end;
  return info;
}

TEST(ShardIndexTest, AddAndLookup) {
  Fixture f;
  auto* index = f.Get(f.MakeIndex());
  EXPECT_TRUE(index->AddShard(Info(10, 0, 100)).ok());
  EXPECT_TRUE(index->AddShard(Info(11, 100, 200)).ok());
  EXPECT_EQ(index->LookupKey(0)->proclet, 10u);
  EXPECT_EQ(index->LookupKey(99)->proclet, 10u);
  EXPECT_EQ(index->LookupKey(100)->proclet, 11u);
  EXPECT_EQ(index->LookupKey(199)->proclet, 11u);
  EXPECT_EQ(index->LookupKey(200).status().code(), StatusCode::kNotFound);
}

TEST(ShardIndexTest, RejectsOverlaps) {
  Fixture f;
  auto* index = f.Get(f.MakeIndex());
  EXPECT_TRUE(index->AddShard(Info(10, 100, 200)).ok());
  EXPECT_EQ(index->AddShard(Info(11, 150, 250)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(index->AddShard(Info(11, 50, 101)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(index->AddShard(Info(11, 100, 200)).code(),
            StatusCode::kFailedPrecondition);
  // Exactly adjacent is fine.
  EXPECT_TRUE(index->AddShard(Info(11, 200, 300)).ok());
  EXPECT_TRUE(index->AddShard(Info(12, 50, 100)).ok());
}

TEST(ShardIndexTest, RejectsEmptyRange) {
  Fixture f;
  auto* index = f.Get(f.MakeIndex());
  EXPECT_EQ(index->AddShard(Info(10, 5, 5)).code(), StatusCode::kInvalidArgument);
}

TEST(ShardIndexTest, GapsAreNotFound) {
  Fixture f;
  auto* index = f.Get(f.MakeIndex());
  EXPECT_TRUE(index->AddShard(Info(10, 0, 100)).ok());
  EXPECT_TRUE(index->AddShard(Info(11, 200, 300)).ok());
  EXPECT_EQ(index->LookupKey(150).status().code(), StatusCode::kNotFound);
}

TEST(ShardIndexTest, RemoveShard) {
  Fixture f;
  auto* index = f.Get(f.MakeIndex());
  EXPECT_TRUE(index->AddShard(Info(10, 0, 100)).ok());
  EXPECT_TRUE(index->RemoveShard(10).ok());
  EXPECT_EQ(index->LookupKey(50).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(index->RemoveShard(10).code(), StatusCode::kNotFound);
}

TEST(ShardIndexTest, UpdateShardShrinksRange) {
  Fixture f;
  auto* index = f.Get(f.MakeIndex());
  EXPECT_TRUE(index->AddShard(Info(10, 0, UINT64_MAX)).ok());
  EXPECT_TRUE(index->UpdateShard(Info(10, 0, 64)).ok());
  EXPECT_EQ(index->LookupKey(63)->proclet, 10u);
  EXPECT_EQ(index->LookupKey(64).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(index->AddShard(Info(11, 64, UINT64_MAX)).ok());
}

TEST(ShardIndexTest, UpdateRejectsWrongProclet) {
  Fixture f;
  auto* index = f.Get(f.MakeIndex());
  EXPECT_TRUE(index->AddShard(Info(10, 0, 100)).ok());
  EXPECT_EQ(index->UpdateShard(Info(99, 0, 50)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ShardIndexTest, VersionBumpsOnMutation) {
  Fixture f;
  auto* index = f.Get(f.MakeIndex());
  const uint64_t v0 = index->version();
  EXPECT_TRUE(index->AddShard(Info(10, 0, 100)).ok());
  EXPECT_GT(index->version(), v0);
  const uint64_t v1 = index->version();
  EXPECT_TRUE(index->UpdateShard(Info(10, 0, 50)).ok());
  EXPECT_GT(index->version(), v1);
}

TEST(ShardIndexTest, NextNeighbor) {
  Fixture f;
  auto* index = f.Get(f.MakeIndex());
  EXPECT_TRUE(index->AddShard(Info(10, 0, 100)).ok());
  EXPECT_TRUE(index->AddShard(Info(11, 100, 200)).ok());
  EXPECT_EQ(index->NextNeighbor(10)->proclet, 11u);
  EXPECT_EQ(index->NextNeighbor(11).status().code(), StatusCode::kNotFound);
}

TEST(ShardRouterTest, CachesAndRefreshes) {
  Fixture f;
  Ref<ShardIndexProclet> ref = f.MakeIndex();
  auto* index = f.Get(ref);
  EXPECT_TRUE(index->AddShard(Info(10, 0, 100)).ok());

  ShardRouter router(ref);
  const Ctx ctx = f.rt->CtxOn(0);
  Result<ShardInfo> hit = f.sim.BlockOn(router.Route(ctx, 50));
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->proclet, 10u);

  // Mutate behind the router's back; the cache still answers for old keys,
  // and a missing key triggers a refresh that picks up the change.
  EXPECT_TRUE(index->AddShard(Info(11, 100, 200)).ok());
  Result<ShardInfo> miss = f.sim.BlockOn(router.Route(ctx, 150));
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->proclet, 11u);
}

TEST(ShardRouterTest, InvalidateForcesRefetch) {
  Fixture f;
  Ref<ShardIndexProclet> ref = f.MakeIndex();
  auto* index = f.Get(ref);
  EXPECT_TRUE(index->AddShard(Info(10, 0, 100)).ok());
  ShardRouter router(ref);
  const Ctx ctx = f.rt->CtxOn(0);
  ASSERT_TRUE(f.sim.BlockOn(router.Route(ctx, 50)).ok());
  EXPECT_TRUE(index->RemoveShard(10).ok());
  EXPECT_TRUE(index->AddShard(Info(20, 0, 100)).ok());
  router.Invalidate();
  EXPECT_EQ(f.sim.BlockOn(router.Route(ctx, 50))->proclet, 20u);
}

}  // namespace
}  // namespace quicksand
