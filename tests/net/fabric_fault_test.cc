// Network faults at the fabric layer: partitions, loss, and delay spikes
// must be silent to the sender (full egress cost paid), deterministic
// across same-seed runs, and fully reversible (a healed fabric behaves
// exactly like one never faulted).

#include "quicksand/net/fabric.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "quicksand/cluster/cluster.h"
#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

FabricConfig TestConfig() {
  FabricConfig cfg;
  cfg.one_way_latency = 5_us;
  cfg.bandwidth_bytes_per_sec = 12'500'000'000;  // 100 Gbps
  cfg.per_message_overhead = 1_us;
  return cfg;
}

Task<> Detailed(Fabric& fabric, MachineId src, MachineId dst, int64_t bytes,
                Simulator& sim, Delivery& out, SimTime& done) {
  out = co_await fabric.TransferDetailed(src, dst, bytes);
  done = sim.Now();
}

TEST(FabricFaultTest, OneWayPartitionDropsOnlyThatDirection) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  fabric.AddNic(0);
  fabric.AddNic(1);
  fabric.PartitionOneWay(0, 1);

  Delivery forward{}, backward{};
  SimTime t_forward, t_backward;
  sim.Spawn(Detailed(fabric, 0, 1, 0, sim, forward, t_forward), "fwd");
  sim.Spawn(Detailed(fabric, 1, 0, 0, sim, backward, t_backward), "bwd");
  sim.RunUntilIdle();

  EXPECT_EQ(forward, Delivery::kDropped);
  EXPECT_EQ(backward, Delivery::kDelivered);
  // The sender of the doomed message pays the same wire time as a delivered
  // one: loss is invisible at the instant of sending.
  EXPECT_EQ(t_forward - SimTime::Zero(), 6_us);
  EXPECT_EQ(fabric.dropped_transfers(), 1);
  EXPECT_TRUE(fabric.LinkDown(0, 1));
  EXPECT_FALSE(fabric.LinkDown(1, 0));
}

TEST(FabricFaultTest, HealRestoresDelivery) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  fabric.AddNic(0);
  fabric.AddNic(1);
  fabric.Partition(0, 1);
  EXPECT_TRUE(fabric.LinkDown(0, 1));
  EXPECT_TRUE(fabric.LinkDown(1, 0));
  fabric.Heal(0, 1);

  Delivery out{};
  SimTime done;
  sim.Spawn(Detailed(fabric, 0, 1, 0, sim, out, done), "t");
  sim.RunUntilIdle();
  EXPECT_EQ(out, Delivery::kDelivered);
  EXPECT_EQ(fabric.dropped_transfers(), 0);
}

TEST(FabricFaultTest, IsolationCutsEveryLinkOfTheMachine) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  for (MachineId m = 0; m < 3; ++m) {
    fabric.AddNic(m);
  }
  fabric.IsolateMachine(1);
  EXPECT_TRUE(fabric.LinkDown(0, 1));
  EXPECT_TRUE(fabric.LinkDown(1, 0));
  EXPECT_TRUE(fabric.LinkDown(1, 2));
  EXPECT_TRUE(fabric.LinkDown(2, 1));
  EXPECT_FALSE(fabric.LinkDown(0, 2));
  fabric.HealMachine(1);
  EXPECT_FALSE(fabric.LinkDown(0, 1));
  EXPECT_FALSE(fabric.LinkDown(2, 1));
}

TEST(FabricFaultTest, CertainLossDropsEverything) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  fabric.AddNic(0);
  fabric.AddNic(1);
  fabric.SetLinkLoss(0, 1, 1.0);
  for (int i = 0; i < 8; ++i) {
    Delivery out{};
    SimTime done;
    sim.Spawn(Detailed(fabric, 0, 1, 128, sim, out, done), "t");
    sim.RunUntilIdle();
    EXPECT_EQ(out, Delivery::kDropped);
  }
  EXPECT_EQ(fabric.dropped_transfers(), 8);
}

TEST(FabricFaultTest, LossDrawsAreSeedDeterministic) {
  auto run = [](uint64_t seed) {
    Simulator sim;
    FabricConfig cfg = TestConfig();
    cfg.fault_seed = seed;
    Fabric fabric(sim, cfg);
    fabric.AddNic(0);
    fabric.AddNic(1);
    fabric.SetLinkLoss(0, 1, 0.5);
    std::ostringstream pattern;
    for (int i = 0; i < 64; ++i) {
      Delivery out{};
      SimTime done;
      sim.Spawn(Detailed(fabric, 0, 1, 128, sim, out, done), "t");
      sim.RunUntilIdle();
      pattern << (out == Delivery::kDelivered ? '1' : '0');
    }
    return pattern.str();
  };
  const std::string a = run(42);
  EXPECT_EQ(a, run(42));
  EXPECT_NE(a, run(43));
  // ~50% loss: both symbols must actually occur.
  EXPECT_NE(a.find('0'), std::string::npos);
  EXPECT_NE(a.find('1'), std::string::npos);
}

TEST(FabricFaultTest, DelaySpikeStallsWithoutDropping) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  fabric.AddNic(0);
  fabric.AddNic(1);
  fabric.SetLinkDelay(0, 1, 100_us);

  Delivery out{};
  SimTime done;
  sim.Spawn(Detailed(fabric, 0, 1, 0, sim, out, done), "t");
  sim.RunUntilIdle();
  EXPECT_EQ(out, Delivery::kDelivered);
  EXPECT_EQ(done - SimTime::Zero(), 106_us);  // 1us + 5us + 100us spike
  EXPECT_EQ(fabric.delayed_transfers(), 1);

  fabric.SetLinkDelay(0, 1, Duration::Zero());
  sim.Spawn(Detailed(fabric, 0, 1, 0, sim, out, done), "t2");
  sim.RunUntilIdle();
  EXPECT_EQ(fabric.delayed_transfers(), 1);
}

TEST(FabricFaultTest, EndpointDeathTrumpsLinkFaults) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  fabric.AddNic(0);
  fabric.AddNic(1);
  fabric.PartitionOneWay(0, 1);
  fabric.FailMachine(1);

  Delivery out{};
  SimTime done;
  sim.Spawn(Detailed(fabric, 0, 1, 0, sim, out, done), "t");
  sim.RunUntilIdle();
  EXPECT_EQ(out, Delivery::kEndpointFailed);
  EXPECT_EQ(fabric.dropped_transfers(), 0);
}

TEST(FabricFaultTest, MidFlightPartitionEatsTheMessage) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  fabric.AddNic(0);
  fabric.AddNic(1);

  // 10 MiB takes ~845us of wire time; cut the link at 100us, mid-flight.
  Delivery out{};
  SimTime done;
  sim.Spawn(Detailed(fabric, 0, 1, 10_MiB, sim, out, done), "t");
  sim.ScheduleAt(SimTime::Zero() + 100_us,
                 [&fabric] { fabric.PartitionOneWay(0, 1); });
  sim.RunUntilIdle();
  EXPECT_EQ(out, Delivery::kDropped);
  EXPECT_EQ(fabric.dropped_transfers(), 1);
}

TEST(FabricFaultTest, BoolTransferReportsDropAsFalse) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  fabric.AddNic(0);
  fabric.AddNic(1);
  fabric.PartitionOneWay(0, 1);
  bool delivered = true;
  sim.Spawn(
      [](Fabric& f, bool& d) -> Task<> {
        d = co_await f.Transfer(0, 1, 64);
      }(fabric, delivered),
      "t");
  sim.RunUntilIdle();
  EXPECT_FALSE(delivered);
}

}  // namespace
}  // namespace quicksand
