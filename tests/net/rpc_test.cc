#include "quicksand/net/rpc.h"

#include <gtest/gtest.h>

#include "quicksand/cluster/cluster.h"
#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct RpcFixture {
  Simulator sim;
  Fabric fabric{sim, FabricConfig{}};
  Rpc rpc{sim, fabric};

  RpcFixture() {
    fabric.AddNic(0);
    fabric.AddNic(1);
  }
};

Task<int64_t> NoopServer() { co_return 0; }

TEST(RpcTest, RoundTripLatencyIsTwoOneWayTrips) {
  RpcFixture f;
  const Status s = f.sim.BlockOn(f.rpc.RoundTrip(0, 1, 0, NoopServer));
  EXPECT_TRUE(s.ok());
  // 2 x (1us overhead + 5us latency) plus header wire time (~10ns).
  EXPECT_GE(f.sim.Now() - SimTime::Zero(), 12_us);
  EXPECT_LE(f.sim.Now() - SimTime::Zero(), 13_us);
  EXPECT_EQ(f.rpc.calls(), 1);
  EXPECT_EQ(f.rpc.latency().count(), 1);
}

Task<int64_t> SlowServer(Simulator& sim) {
  co_await sim.Sleep(10_ms);
  co_return 128;
}

TEST(RpcTest, ServerTimeCountsTowardLatency) {
  RpcFixture f;
  const Status s =
      f.sim.BlockOn(f.rpc.RoundTrip(0, 1, 64, [&] { return SlowServer(f.sim); }));
  EXPECT_TRUE(s.ok());
  EXPECT_GE(f.sim.Now() - SimTime::Zero(), 10_ms);
  EXPECT_GE(f.rpc.latency().Max(), 10_ms);
}

TEST(RpcTest, TimeoutReportsDeadlineExceeded) {
  RpcFixture f;
  const Status s = f.sim.BlockOn(
      f.rpc.RoundTrip(0, 1, 64, [&] { return SlowServer(f.sim); }, 1_ms));
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(f.rpc.timeouts(), 1);
}

TEST(RpcTest, LargePayloadsPayWireTime) {
  RpcFixture f;
  const Status s = f.sim.BlockOn(f.rpc.RoundTrip(0, 1, 10_MiB, NoopServer));
  EXPECT_TRUE(s.ok());
  // 10 MiB at 12.5 GB/s is ~839us one way.
  EXPECT_GE(f.sim.Now() - SimTime::Zero(), 800_us);
}

TEST(RpcTest, LocalCallSkipsWire) {
  RpcFixture f;
  const Status s = f.sim.BlockOn(f.rpc.RoundTrip(0, 0, 1_MiB, NoopServer));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(f.sim.Now(), SimTime::Zero());
}

// Server that is slow (times out) for the first `slow_calls` calls, then fast.
Task<int64_t> FlakyServer(Simulator& sim, int* calls, int slow_calls) {
  if ((*calls)++ < slow_calls) {
    co_await sim.Sleep(10_ms);
  }
  co_return 64;
}

TEST(RpcTest, RetryRecoversFromTransientTimeouts) {
  RpcFixture f;
  int calls = 0;
  RpcRetryPolicy policy;
  policy.max_attempts = 3;
  const Status s = f.sim.BlockOn(f.rpc.RoundTripWithRetry(
      0, 1, 64, [&] { return FlakyServer(f.sim, &calls, 2); }, 1_ms, policy));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(f.rpc.retries(), 2);
  EXPECT_EQ(f.rpc.timeouts(), 2);
}

TEST(RpcTest, RetryGivesUpAfterMaxAttempts) {
  RpcFixture f;
  int calls = 0;
  RpcRetryPolicy policy;
  policy.max_attempts = 3;
  const Status s = f.sim.BlockOn(f.rpc.RoundTripWithRetry(
      0, 1, 64, [&] { return FlakyServer(f.sim, &calls, 100); }, 1_ms, policy));
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(f.rpc.retries(), 2);
  EXPECT_EQ(f.rpc.timeouts(), 3);
}

TEST(RpcTest, RetryBackoffIsDeterministicAndNonZero) {
  SimTime first_end;
  {
    RpcFixture f;
    int calls = 0;
    f.sim.BlockOn(f.rpc.RoundTripWithRetry(
        0, 1, 64, [&] { return FlakyServer(f.sim, &calls, 100); }, 1_ms));
    first_end = f.sim.Now();
  }
  RpcFixture f;
  int calls = 0;
  f.sim.BlockOn(f.rpc.RoundTripWithRetry(
      0, 1, 64, [&] { return FlakyServer(f.sim, &calls, 100); }, 1_ms));
  EXPECT_EQ(f.sim.Now(), first_end);  // same seed, bit-identical schedule
  // Three 10ms server rounds plus two jittered backoffs: strictly more than
  // the no-backoff floor.
  EXPECT_GT(f.sim.Now() - SimTime::Zero(), 30_ms);
}

TEST(RpcTest, RetryBackoffIsCappedByMaxBackoff) {
  // Without the cap, a base of 1ms at x10 would sleep 1 + 10 + 100 + 1000 +
  // 10000 ms across six attempts. Capped at 2ms the whole schedule is 9ms
  // of backoff: jitter is zeroed so the bound is exact.
  RpcFixture f;
  int calls = 0;
  RpcRetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_backoff = 1_ms;
  policy.multiplier = 10.0;
  policy.jitter = 0.0;
  policy.max_backoff = 2_ms;
  const SimTime start = f.sim.Now();
  const Status s = f.sim.BlockOn(f.rpc.RoundTripWithRetry(
      0, 1, 64, [&] { return FlakyServer(f.sim, &calls, 100); }, 1_ms, policy));
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(calls, 6);
  // Six 10ms server rounds plus backoffs of 1, 2, 2, 2, 2 ms — nowhere near
  // the uncapped schedule's 11+ seconds.
  const Duration elapsed = f.sim.Now() - start;
  EXPECT_GE(elapsed, 69_ms);
  EXPECT_LT(elapsed, 75_ms);
}

TEST(RpcTest, MaxBackoffAlsoCapsTheFirstSleepWhenBaseExceedsIt) {
  RpcFixture f;
  int calls = 0;
  RpcRetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff = 100_ms;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  policy.max_backoff = 1_ms;
  const Status s = f.sim.BlockOn(f.rpc.RoundTripWithRetry(
      0, 1, 64, [&] { return FlakyServer(f.sim, &calls, 100); }, 1_ms, policy));
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  // Three 10ms rounds + two 1ms (capped) backoffs.
  const Duration elapsed = f.sim.Now() - SimTime::Zero();
  EXPECT_GE(elapsed, 32_ms);
  EXPECT_LT(elapsed, 35_ms);
}

TEST(RpcTest, DeadEndpointIsTerminalNotRetried) {
  RpcFixture f;
  f.fabric.FailMachine(1);
  const Status s =
      f.sim.BlockOn(f.rpc.RoundTripWithRetry(0, 1, 64, NoopServer, 1_ms));
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(f.rpc.retries(), 0);
  EXPECT_EQ(f.rpc.aborted(), 1);
}

}  // namespace
}  // namespace quicksand
