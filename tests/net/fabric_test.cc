#include "quicksand/net/fabric.h"

#include <gtest/gtest.h>

#include "quicksand/cluster/cluster.h"
#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

FabricConfig TestConfig() {
  FabricConfig cfg;
  cfg.one_way_latency = 5_us;
  cfg.bandwidth_bytes_per_sec = 12'500'000'000;  // 100 Gbps
  cfg.per_message_overhead = 1_us;
  return cfg;
}

Task<> DoTransfer(Fabric& fabric, MachineId src, MachineId dst, int64_t bytes,
                  Simulator& sim, SimTime& done) {
  co_await fabric.Transfer(src, dst, bytes);
  done = sim.Now();
}

TEST(FabricTest, SmallMessageCostIsOverheadPlusLatency) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  fabric.AddNic(0);
  fabric.AddNic(1);
  SimTime done;
  sim.Spawn(DoTransfer(fabric, 0, 1, 0, sim, done), "t");
  sim.RunUntilIdle();
  EXPECT_EQ(done - SimTime::Zero(), 6_us);  // 1us overhead + 5us latency
}

TEST(FabricTest, LargeTransferPaysBandwidth) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  fabric.AddNic(0);
  fabric.AddNic(1);
  SimTime done;
  // 10 MiB at 12.5 GB/s = ~839 us of wire time.
  sim.Spawn(DoTransfer(fabric, 0, 1, 10_MiB, sim, done), "t");
  sim.RunUntilIdle();
  const Duration elapsed = done - SimTime::Zero();
  EXPECT_GT(elapsed, 800_us);
  EXPECT_LT(elapsed, 900_us);
}

TEST(FabricTest, LocalTransferIsFree) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  fabric.AddNic(0);
  SimTime done;
  sim.Spawn(DoTransfer(fabric, 0, 0, 100_MiB, sim, done), "t");
  sim.RunUntilIdle();
  EXPECT_EQ(done, SimTime::Zero());
  EXPECT_EQ(fabric.total_bytes_sent(), 0);
}

TEST(FabricTest, EgressNicSharesBandwidthAtFrameGranularity) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  fabric.AddNic(0);
  fabric.AddNic(1);
  fabric.AddNic(2);
  SimTime done_a;
  SimTime done_b;
  // Two 1 MiB sends from the same source share the NIC: both take ~2x the
  // solo wire time (frames interleave), finishing within a frame of each
  // other.
  sim.Spawn(DoTransfer(fabric, 0, 1, 1_MiB, sim, done_a), "a");
  sim.Spawn(DoTransfer(fabric, 0, 2, 1_MiB, sim, done_b), "b");
  sim.RunUntilIdle();
  EXPECT_GT(done_a - SimTime::Zero(), 150_us);  // ~2 x 84us
  EXPECT_GT(done_b - SimTime::Zero(), 150_us);
  const Duration gap = done_b - done_a;
  EXPECT_LT(gap, 10_us);  // one 64 KiB frame is ~5.2us
}

TEST(FabricTest, SmallMessageNotBlockedBehindBulkTransfer) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  fabric.AddNic(0);
  fabric.AddNic(1);
  SimTime bulk_done;
  SimTime small_done;
  // A 64 MiB bulk transfer (~5.4ms of wire time) must not delay a 128-byte
  // control message by more than about a frame.
  sim.Spawn(DoTransfer(fabric, 0, 1, 64_MiB, sim, bulk_done), "bulk");
  sim.Schedule(100_us, [&] {
    sim.Spawn(DoTransfer(fabric, 0, 1, 128, sim, small_done), "small");
  });
  sim.RunUntilIdle();
  EXPECT_LT(small_done - SimTime::Zero(), 120_us);
  EXPECT_GT(bulk_done - SimTime::Zero(), 5_ms);
}

TEST(FabricTest, DistinctSourcesDontContend) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  fabric.AddNic(0);
  fabric.AddNic(1);
  fabric.AddNic(2);
  SimTime done_a;
  SimTime done_b;
  sim.Spawn(DoTransfer(fabric, 0, 2, 1_MiB, sim, done_a), "a");
  sim.Spawn(DoTransfer(fabric, 1, 2, 1_MiB, sim, done_b), "b");
  sim.RunUntilIdle();
  EXPECT_EQ(done_a, done_b);
}

TEST(FabricTest, UnloadedTransferTimeMatchesActual) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  fabric.AddNic(0);
  fabric.AddNic(1);
  const Duration predicted = fabric.UnloadedTransferTime(2_MiB);
  SimTime done;
  sim.Spawn(DoTransfer(fabric, 0, 1, 2_MiB, sim, done), "t");
  sim.RunUntilIdle();
  // Per-frame integer rounding may drift by a nanosecond per frame.
  EXPECT_NEAR(static_cast<double>((done - SimTime::Zero()).nanos()),
              static_cast<double>(predicted.nanos()), 100.0);
}

TEST(FabricTest, CountsBytesAndMessages) {
  Simulator sim;
  Fabric fabric(sim, TestConfig());
  fabric.AddNic(0);
  fabric.AddNic(1);
  SimTime d1;
  SimTime d2;
  sim.Spawn(DoTransfer(fabric, 0, 1, 100, sim, d1), "a");
  sim.Spawn(DoTransfer(fabric, 1, 0, 200, sim, d2), "b");
  sim.RunUntilIdle();
  EXPECT_EQ(fabric.total_bytes_sent(), 300);
  EXPECT_EQ(fabric.total_messages(), 2);
  EXPECT_GT(fabric.NicBusy(0), Duration::Zero());
  EXPECT_GT(fabric.NicBusy(1), Duration::Zero());
}

}  // namespace
}  // namespace quicksand
