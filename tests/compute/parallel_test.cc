#include "quicksand/compute/parallel.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 2, int cores = 4) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = cores;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ctx ctx() { return rt->CtxOn(0); }

  ShardedVector<int64_t> MakeFilled(int64_t n) {
    ShardedVector<int64_t>::Options options;
    options.max_shard_bytes = 2048;
    auto vec = *sim.BlockOn(ShardedVector<int64_t>::Create(ctx(), options));
    for (int64_t i = 0; i < n; ++i) {
      QS_CHECK(sim.BlockOn(vec.PushBack(ctx(), i)).ok());
    }
    return vec;
  }

  DistPool MakePool(int proclets) {
    DistPool::Options options;
    options.initial_proclets = proclets;
    options.workers_per_proclet = 2;
    return *sim.BlockOn(DistPool::Create(ctx(), options));
  }
};

TEST(ParallelTest, ForEachVisitsEveryElementOnce) {
  Fixture f;
  auto vec = f.MakeFilled(500);
  DistPool pool = f.MakePool(2);
  std::vector<int> seen(500, 0);
  ParallelOptions options;
  options.span_elems = 64;
  Status s = f.sim.BlockOn(ParallelForEach(
      f.ctx(), pool, vec,
      [&seen](Ctx, uint64_t index, int64_t value) -> Task<> {
        EXPECT_EQ(static_cast<int64_t>(index), value);
        ++seen[static_cast<size_t>(index)];
        co_return;
      },
      options));
  EXPECT_TRUE(s.ok());
  for (int count : seen) {
    EXPECT_EQ(count, 1);
  }
}

TEST(ParallelTest, ForEachUsesMultipleCores) {
  Fixture f(2, 4);
  auto vec = f.MakeFilled(64);
  DistPool pool = f.MakePool(2);
  ParallelOptions options;
  options.span_elems = 8;
  const SimTime start = f.sim.Now();
  // 64 elements x 1ms = 64ms of CPU over 8 cores: ~8-12ms wall.
  Status s = f.sim.BlockOn(ParallelForEach(
      f.ctx(), pool, vec,
      [](Ctx job_ctx, uint64_t, int64_t) -> Task<> {
        co_await BurnCpu(job_ctx, 1_ms);
      },
      options));
  EXPECT_TRUE(s.ok());
  EXPECT_LT(f.sim.Now() - start, 20_ms);
}

TEST(ParallelTest, ReduceSums) {
  Fixture f;
  auto vec = f.MakeFilled(300);
  DistPool pool = f.MakePool(2);
  Result<int64_t> total = f.sim.BlockOn(ParallelReduce<int64_t>(
      f.ctx(), pool, vec, int64_t{0},
      [](Ctx, uint64_t, int64_t value) -> Task<int64_t> { co_return value; },
      [](int64_t a, int64_t b) { return a + b; }));
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 299 * 300 / 2);
}

TEST(ParallelTest, MapProducesTransformedVector) {
  Fixture f;
  auto vec = f.MakeFilled(200);
  DistPool pool = f.MakePool(2);
  Result<ShardedVector<int64_t>> mapped = f.sim.BlockOn(ParallelMap<int64_t>(
      f.ctx(), pool, vec,
      [](Ctx, uint64_t, int64_t value) -> Task<int64_t> { co_return value * 2; }));
  ASSERT_TRUE(mapped.ok());
  Result<uint64_t> size = f.sim.BlockOn(mapped->Size(f.ctx()));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 200u);
  // Order is not guaranteed; check the multiset via a sum and parity.
  Result<std::vector<int64_t>> all = f.sim.BlockOn(mapped->GetRange(f.ctx(), 0, 200));
  ASSERT_TRUE(all.ok());
  int64_t sum = 0;
  for (int64_t v : *all) {
    EXPECT_EQ(v % 2, 0);
    sum += v;
  }
  EXPECT_EQ(sum, 2 * 199 * 200 / 2);
}

TEST(ParallelTest, EmptyVectorIsANoop) {
  Fixture f;
  ShardedVector<int64_t>::Options options;
  auto vec = *f.sim.BlockOn(ShardedVector<int64_t>::Create(f.ctx(), options));
  DistPool pool = f.MakePool(1);
  Status s = f.sim.BlockOn(ParallelForEach(
      f.ctx(), pool, vec,
      [](Ctx, uint64_t, int64_t) -> Task<> { co_return; }));
  EXPECT_TRUE(s.ok());
}

TEST(ParallelTest, FailingElementReportsError) {
  Fixture f;
  auto vec = f.MakeFilled(10);
  DistPool pool = f.MakePool(1);
  Status s = f.sim.BlockOn(ParallelForEach(
      f.ctx(), pool, vec,
      [](Ctx, uint64_t index, int64_t) -> Task<> {
        if (index == 5) {
          throw std::runtime_error("element 5 is cursed");
        }
        co_return;
      }));
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace quicksand
