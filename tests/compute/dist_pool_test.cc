#include "quicksand/compute/dist_pool.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 2, int cores = 4) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = cores;
      spec.memory_bytes = 2_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ctx ctx() { return rt->CtxOn(0); }

  DistPool MakePool(int proclets, int workers = 2) {
    DistPool::Options options;
    options.initial_proclets = proclets;
    options.workers_per_proclet = workers;
    return *sim.BlockOn(DistPool::Create(ctx(), options));
  }
};

ComputeProclet::Job Burn(Duration work, int64_t* done) {
  return [work, done](Ctx ctx) -> Task<> {
    co_await BurnCpu(ctx, work);
    ++*done;
  };
}

TEST(DistPoolTest, RunsJobsAcrossMembers) {
  Fixture f;
  DistPool pool = f.MakePool(2);
  int64_t done = 0;
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(pool.Submit(f.ctx(), Burn(1_ms, &done))).ok());
  }
  f.sim.BlockOn(pool.Drain(f.ctx()));
  EXPECT_EQ(done, 20);
  EXPECT_EQ(pool.submitted(), 20);
}

TEST(DistPoolTest, MembersSpreadAcrossMachines) {
  Fixture f(4);
  DistPool pool = f.MakePool(4);
  std::set<MachineId> machines;
  for (const auto& member : pool.members()) {
    machines.insert(member.Location());
  }
  EXPECT_GE(machines.size(), 2u);
}

TEST(DistPoolTest, LeastBackloggedMemberGetsWork) {
  Fixture f;
  DistPool pool = f.MakePool(2, 1);
  int64_t done = 0;
  // Saturate member queues unevenly by submitting while everything is busy,
  // then assert roughly even backlogs (the balancer picks the shortest).
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(pool.Submit(f.ctx(), Burn(5_ms, &done))).ok());
  }
  int64_t q0 = 0;
  int64_t q1 = 0;
  if (auto* p = f.rt->UnsafeGet<ComputeProclet>(pool.members()[0].id())) {
    q0 = p->queue_depth() + p->inflight();
  }
  if (auto* p = f.rt->UnsafeGet<ComputeProclet>(pool.members()[1].id())) {
    q1 = p->queue_depth() + p->inflight();
  }
  EXPECT_NEAR(static_cast<double>(q0), static_cast<double>(q1), 2.0);
  f.sim.BlockOn(pool.Drain(f.ctx()));
  EXPECT_EQ(done, 40);
}

TEST(DistPoolTest, GrowAddsCapacity) {
  Fixture f(2, 2);
  DistPool pool = f.MakePool(1, 2);
  EXPECT_EQ(pool.members().size(), 1u);
  EXPECT_TRUE(f.sim.BlockOn(pool.Grow(f.ctx())).ok());
  EXPECT_EQ(pool.members().size(), 2u);

  // 8 x 10ms of work over 2 proclets x 2 workers on 2x2 cores = ~20ms.
  int64_t done = 0;
  const SimTime start = f.sim.Now();
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(pool.Submit(f.ctx(), Burn(10_ms, &done))).ok());
  }
  f.sim.BlockOn(pool.Drain(f.ctx()));
  EXPECT_EQ(done, 8);
  EXPECT_LT(f.sim.Now() - start, 25_ms);
}

TEST(DistPoolTest, ShrinkPreservesQueuedJobs) {
  Fixture f;
  DistPool pool = f.MakePool(2, 1);
  int64_t done = 0;
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(pool.Submit(f.ctx(), Burn(2_ms, &done))).ok());
  }
  EXPECT_TRUE(f.sim.BlockOn(pool.Shrink(f.ctx())).ok());
  EXPECT_EQ(pool.members().size(), 1u);
  f.sim.BlockOn(pool.Drain(f.ctx()));
  f.sim.RunUntilIdle();
  EXPECT_EQ(done, 30);  // no job lost in the merge
}

TEST(DistPoolTest, CannotShrinkBelowOne) {
  Fixture f;
  DistPool pool = f.MakePool(1);
  EXPECT_EQ(f.sim.BlockOn(pool.Shrink(f.ctx())).code(),
            StatusCode::kFailedPrecondition);
}

TEST(DistPoolTest, ShutdownDestroysMembers) {
  Fixture f;
  DistPool pool = f.MakePool(3);
  const size_t before = f.rt->proclet_count();
  f.sim.BlockOn(pool.Shutdown(f.ctx()));
  f.sim.RunUntilIdle();
  EXPECT_EQ(f.rt->proclet_count(), before - 3);
  EXPECT_TRUE(pool.members().empty());
}

}  // namespace
}  // namespace quicksand
