// EmergencyEvacuator and CheckpointManager both subscribe to revocation
// notices and race the same deadline on the same dying machine: the
// evacuator migrates proclets away while the checkpoint manager snapshots
// them. Both paths serialize through the proclet invocation gate, so the
// race must never deadlock — whichever wins per proclet, every proclet ends
// up saved (migrated away or restorable) and the run terminates promptly.
// Both arm orders are exercised: handler registration order decides who
// sees the notice first.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/durability/checkpoint_manager.h"
#include "quicksand/durability/recovery_coordinator.h"
#include "quicksand/proclet/memory_proclet.h"
#include "quicksand/sched/evacuator.h"

namespace quicksand {
namespace {

constexpr int kMachines = 4;
constexpr int kProclets = 8;

enum class Probe { kPending, kOk, kLost, kOther };

Task<> ProbeCall(Runtime& rt, Ref<MemoryProclet> p, Probe* out) {
  auto call = p.Call(rt.CtxOn(0), [](MemoryProclet& m) -> Task<int64_t> {
    co_return static_cast<int64_t>(m.object_count());
  });
  try {
    (void)co_await std::move(call);
    *out = Probe::kOk;
  } catch (const ProcletLostError&) {
    *out = Probe::kLost;
  } catch (...) {
    *out = Probe::kOther;
  }
}

void RunRace(bool evacuator_first) {
  Simulator sim;
  Cluster cluster{sim};
  for (int i = 0; i < kMachines; ++i) {
    MachineSpec spec;
    spec.memory_bytes = 2 * kGiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  FaultInjector faults(sim, cluster);
  rt.AttachFaultInjector(faults);

  EmergencyEvacuator evacuator(rt);
  CheckpointManager checkpoints(rt);
  RecoveryCoordinator recovery(rt);
  recovery.AttachCheckpoints(&checkpoints);
  if (evacuator_first) {
    evacuator.Arm(faults);
    checkpoints.Arm(faults);
  } else {
    checkpoints.Arm(faults);
    evacuator.Arm(faults);
  }
  recovery.Arm(faults);

  std::vector<Ref<MemoryProclet>> proclets;
  for (int i = 0; i < kProclets; ++i) {
    PlacementRequest req;
    req.heap_bytes = 1 * kMiB;
    req.pinned = MachineId{1};
    proclets.push_back(*sim.BlockOn(rt.Create<MemoryProclet>(rt.CtxOn(0), req)));
    ASSERT_TRUE(
        sim.BlockOn(
               checkpoints.ProtectAs<MemoryProclet>(rt.CtxOn(0), proclets.back().id()))
            .ok());
  }

  faults.ScheduleRevocation(sim.Now() + Duration::Millis(1), 1,
                            Duration::Millis(5));
  const SimTime deadline = sim.Now() + Duration::Millis(6);
  // A bounded run: if the two subscribers deadlock on a proclet's gate, the
  // probes below stay kPending and the expectations fail (instead of the
  // test hanging forever).
  sim.RunUntil(deadline + Duration::Millis(50));

  EXPECT_EQ(faults.revocations(), 1);
  ASSERT_EQ(evacuator.reports().size(), 1u);
  EXPECT_LE(evacuator.reports().front().elapsed, Duration::Millis(5));

  std::vector<Probe> outcomes(proclets.size(), Probe::kPending);
  for (size_t i = 0; i < proclets.size(); ++i) {
    sim.Spawn(ProbeCall(rt, proclets[i], &outcomes[i]), "probe");
  }
  sim.RunFor(Duration::Millis(20));

  // Every proclet was saved: either the evacuator moved it off machine 1 in
  // time, or the final pre-death checkpoint + recovery restored it.
  for (size_t i = 0; i < proclets.size(); ++i) {
    EXPECT_EQ(outcomes[i], Probe::kOk) << "proclet " << i;
    EXPECT_NE(proclets[i].Location(), 1u) << "proclet " << i;
  }
  EXPECT_EQ(recovery.total_unrecoverable(), 0);
  EXPECT_EQ(evacuator.total_evacuated() + rt.stats().restored_proclets,
            kProclets);
}

TEST(EvacuatorCheckpointRaceTest, EvacuatorArmedFirst) {
  RunRace(/*evacuator_first=*/true);
}

TEST(EvacuatorCheckpointRaceTest, CheckpointManagerArmedFirst) {
  RunRace(/*evacuator_first=*/false);
}

}  // namespace
}  // namespace quicksand
