#include "quicksand/sched/local_reactor.h"

#include <gtest/gtest.h>

#include "quicksand/cluster/antagonist.h"
#include "quicksand/common/bytes.h"
#include "quicksand/proclet/compute_proclet.h"

namespace quicksand {
namespace {

// A trivial memory proclet for eviction tests.
class MemoryProcletStub : public ProcletBase {
 public:
  static constexpr ProcletKind kKind = ProcletKind::kMemory;
  explicit MemoryProcletStub(const ProcletInit& init) : ProcletBase(init) {}
};

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 2, int cores = 2) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = cores;
      spec.memory_bytes = 1_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ctx ctx() { return rt->CtxOn(0); }

  Ref<ComputeProclet> MakeCompute(MachineId where, int workers = 2) {
    PlacementRequest req;
    req.heap_bytes = 4096;
    req.pinned = where;
    return *sim.BlockOn(rt->Create<ComputeProclet>(ctx(), req, workers));
  }

  Task<Status> Submit(Ref<ComputeProclet> cp, ComputeProclet::Job job) {
    auto call = cp.Call(
        ctx(), [job = std::move(job)](ComputeProclet& p) mutable -> Task<Status> {
          co_return p.Submit(std::move(job));
        });
    co_return co_await std::move(call);
  }
};

TEST(LocalReactorTest, CpuPressureEvictsComputeProclet) {
  Fixture f;
  Ref<ComputeProclet> cp = f.MakeCompute(0);
  // Endless stream of burnable work.
  int64_t done = 0;
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(f.sim
                    .BlockOn(f.Submit(cp,
                                      [&done](Ctx job_ctx) -> Task<> {
                                        (void)co_await MigratableBurn(job_ctx, 500_us);
                                        ++done;
                                      }))
                    .ok());
  }
  LocalReactor reactor(*f.rt, 0);
  reactor.Start();
  // High-priority antagonist grabs both cores of machine 0.
  PhasedAntagonistConfig cfg;
  cfg.busy = 50_ms;
  cfg.idle = 1_ms;
  PhasedAntagonist antagonist(f.sim, f.cluster.machine(0), cfg);
  antagonist.Start();

  f.sim.RunUntil(f.sim.Now() + 20_ms);
  // The proclet fled to machine 1 and kept completing work there.
  EXPECT_EQ(cp.Location(), 1u);
  EXPECT_GE(reactor.cpu_evictions(), 1);
  EXPECT_GT(done, 20);
}

TEST(LocalReactorTest, NoEvictionWithoutPressure) {
  Fixture f;
  Ref<ComputeProclet> cp = f.MakeCompute(0);
  int64_t done = 0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(f.sim
                    .BlockOn(f.Submit(cp,
                                      [&done](Ctx job_ctx) -> Task<> {
                                        (void)co_await MigratableBurn(job_ctx, 200_us);
                                        ++done;
                                      }))
                    .ok());
  }
  LocalReactor reactor(*f.rt, 0);
  reactor.Start();
  f.sim.RunUntil(f.sim.Now() + 20_ms);
  EXPECT_EQ(cp.Location(), 0u);
  EXPECT_EQ(reactor.cpu_evictions(), 0);
  EXPECT_EQ(done, 4);
}

TEST(LocalReactorTest, MemoryPressureEvictsMemoryProclets) {
  Fixture f;
  // Two memory proclets on machine 0 holding substantial heaps.
  PlacementRequest req;
  req.heap_bytes = 300_MiB;
  req.pinned = MachineId{0};
  auto a = *f.sim.BlockOn(f.rt->Create<MemoryProcletStub>(f.ctx(), req));
  auto b = *f.sim.BlockOn(f.rt->Create<MemoryProcletStub>(f.ctx(), req));
  // Push machine 0 over the (0.96) watermark with direct ballast.
  QS_CHECK(f.cluster.machine(0).memory().TryCharge(390_MiB));

  LocalReactor reactor(*f.rt, 0);
  reactor.Start();
  // A 300 MiB heap takes ~24ms of wire time to evacuate; give it room.
  f.sim.RunUntil(f.sim.Now() + 100_ms);
  EXPECT_GE(reactor.memory_evictions(), 1);
  EXPECT_LT(f.cluster.machine(0).memory().utilization(), 0.96);
  // At least one of them moved to machine 1.
  EXPECT_TRUE(a.Location() == 1 || b.Location() == 1);
}

TEST(LocalReactorTest, CooldownPreventsPingPong) {
  Fixture f;
  Ref<ComputeProclet> cp = f.MakeCompute(0);
  int64_t done = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(f.sim
                    .BlockOn(f.Submit(cp,
                                      [&done](Ctx job_ctx) -> Task<> {
                                        (void)co_await MigratableBurn(job_ctx, 500_us);
                                        ++done;
                                      }))
                    .ok());
  }
  // Antagonists on BOTH machines: nowhere is free, but the reactor must not
  // thrash the proclet back and forth every period.
  PhasedAntagonistConfig cfg;
  cfg.busy = 100_ms;
  cfg.idle = 1_ms;
  PhasedAntagonist a0(f.sim, f.cluster.machine(0), cfg);
  PhasedAntagonist a1(f.sim, f.cluster.machine(1), cfg);
  a0.Start();
  a1.Start();
  auto reactors = StartLocalReactors(*f.rt);
  f.sim.RunUntil(f.sim.Now() + 30_ms);
  const int64_t migrations = f.rt->stats().migrations;
  // Cooldown (2ms) bounds migrations to ~15 in 30ms even in the worst case.
  EXPECT_LE(migrations, 16);
}

}  // namespace
}  // namespace quicksand
