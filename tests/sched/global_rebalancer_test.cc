#include "quicksand/sched/global_rebalancer.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"
#include "quicksand/proclet/memory_proclet.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 3) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 4;
      spec.memory_bytes = 1_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ctx ctx() { return rt->CtxOn(0); }

  Ref<MemoryProclet> MakeMem(MachineId where, int64_t heap) {
    PlacementRequest req;
    req.heap_bytes = heap;
    req.pinned = where;
    return *sim.BlockOn(rt->Create<MemoryProclet>(ctx(), req));
  }
};

TEST(GlobalRebalancerTest, SpreadsMemoryFromCrowdedMachine) {
  Fixture f;
  // Machine 0 hosts 3 x 200 MiB; machines 1 and 2 are empty.
  auto a = f.MakeMem(0, 200_MiB);
  auto b = f.MakeMem(0, 200_MiB);
  auto c = f.MakeMem(0, 200_MiB);
  GlobalRebalancerConfig cfg;
  cfg.improvement_threshold = 0.1;
  GlobalRebalancer rebalancer(*f.rt, cfg);
  const int moved = f.sim.BlockOn(rebalancer.RebalanceOnce());
  EXPECT_GE(moved, 1);
  std::set<MachineId> hosts = {a.Location(), b.Location(), c.Location()};
  EXPECT_GE(hosts.size(), 2u);
}

TEST(GlobalRebalancerTest, BalancedClusterStaysPut) {
  Fixture f;
  auto a = f.MakeMem(0, 100_MiB);
  auto b = f.MakeMem(1, 100_MiB);
  auto c = f.MakeMem(2, 100_MiB);
  GlobalRebalancer rebalancer(*f.rt);
  const int moved = f.sim.BlockOn(rebalancer.RebalanceOnce());
  EXPECT_EQ(moved, 0);
  EXPECT_EQ(a.Location(), 0u);
  EXPECT_EQ(b.Location(), 1u);
  EXPECT_EQ(c.Location(), 2u);
}

TEST(GlobalRebalancerTest, AffinityColocatesChattyProclets) {
  Fixture f(2);
  auto a = f.MakeMem(0, 1_MiB);
  auto b = f.MakeMem(1, 1_MiB);
  // Record heavy traffic between a and b (well past the absolute-gain floor).
  f.rt->RecordAffinity(a.id(), b.id(), 512_MiB);

  GlobalRebalancerConfig cfg;
  cfg.affinity_weight = 1.0;
  cfg.improvement_threshold = 0.0;
  GlobalRebalancer rebalancer(*f.rt, cfg);
  (void)f.sim.BlockOn(rebalancer.RebalanceOnce());
  EXPECT_EQ(a.Location(), b.Location());
}

TEST(GlobalRebalancerTest, BoundsMigrationsPerRound) {
  Fixture f;
  std::vector<Ref<MemoryProclet>> proclets;
  for (int i = 0; i < 20; ++i) {
    proclets.push_back(f.MakeMem(0, 20_MiB));
  }
  GlobalRebalancerConfig cfg;
  cfg.max_migrations_per_round = 3;
  cfg.improvement_threshold = 0.0;
  GlobalRebalancer rebalancer(*f.rt, cfg);
  const int moved = f.sim.BlockOn(rebalancer.RebalanceOnce());
  EXPECT_LE(moved, 3);
}

TEST(GlobalRebalancerTest, PeriodicLoopConverges) {
  Fixture f;
  for (int i = 0; i < 9; ++i) {
    f.MakeMem(0, 60_MiB);
  }
  GlobalRebalancerConfig cfg;
  cfg.period = 5_ms;
  cfg.improvement_threshold = 0.2;
  GlobalRebalancer rebalancer(*f.rt, cfg);
  rebalancer.Start();
  f.sim.RunUntil(f.sim.Now() + 100_ms);
  // Memory should be spread: no machine holds more than ~2/3 of the total.
  int64_t max_used = 0;
  for (MachineId m = 0; m < f.cluster.size(); ++m) {
    max_used = std::max(max_used, f.cluster.machine(m).memory().used());
  }
  EXPECT_LE(max_used, 6 * 60_MiB);
  EXPECT_GT(rebalancer.total_migrations(), 0);
}

}  // namespace
}  // namespace quicksand
