#include "quicksand/sched/placement.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};

  MachineId Add(int cores, int64_t mem) {
    MachineSpec spec;
    spec.cores = cores;
    spec.memory_bytes = mem;
    return cluster.AddMachine(spec);
  }
};

PlacementRequest MemReq(int64_t bytes) {
  PlacementRequest r;
  r.kind = ProcletKind::kMemory;
  r.heap_bytes = bytes;
  return r;
}

PlacementRequest ComputeReq() {
  PlacementRequest r;
  r.kind = ProcletKind::kCompute;
  r.heap_bytes = 4096;
  return r;
}

TEST(PlacementTest, FirstFitTakesLowestFeasibleId) {
  Fixture f;
  f.Add(4, 1_GiB);
  f.Add(4, 8_GiB);
  FirstFitPolicy policy;
  EXPECT_EQ(*policy.Place(MemReq(512_MiB), f.cluster), 0u);
  EXPECT_EQ(*policy.Place(MemReq(2_GiB), f.cluster), 1u);  // 0 too small
}

TEST(PlacementTest, BestFitMemoryPicksMostFreeBytes) {
  Fixture f;
  f.Add(4, 2_GiB);
  f.Add(4, 8_GiB);
  f.Add(4, 4_GiB);
  BestFitPolicy policy;
  EXPECT_EQ(*policy.Place(MemReq(1_MiB), f.cluster), 1u);
  EXPECT_TRUE(f.cluster.machine(1).memory().TryCharge(7_GiB));
  EXPECT_EQ(*policy.Place(MemReq(1_MiB), f.cluster), 2u);
}

TEST(PlacementTest, BestFitComputePicksIdlestCpu) {
  Fixture f;
  const MachineId a = f.Add(8, 4_GiB);
  const MachineId b = f.Add(4, 4_GiB);
  BestFitPolicy policy;
  // 8 idle cores beats 4 idle cores.
  EXPECT_EQ(*policy.Place(ComputeReq(), f.cluster), a);
  // Load machine a with runnable work: 8 requests on 8 cores.
  for (int i = 0; i < 8; ++i) {
    f.sim.Spawn(f.cluster.machine(a).cpu().Run(1_s), "burn");
  }
  f.sim.RunUntil(f.sim.Now() + 1_ms);
  EXPECT_EQ(*policy.Place(ComputeReq(), f.cluster), b);
}

TEST(PlacementTest, PinnedOverridesPolicy) {
  Fixture f;
  f.Add(4, 1_GiB);
  f.Add(4, 8_GiB);
  BestFitPolicy policy;
  PlacementRequest req = MemReq(1_MiB);
  req.pinned = MachineId{0};
  EXPECT_EQ(*policy.Place(req, f.cluster), 0u);
}

TEST(PlacementTest, ExcludeSkipsMachine) {
  Fixture f;
  f.Add(4, 8_GiB);
  f.Add(4, 4_GiB);
  BestFitPolicy policy;
  PlacementRequest req = MemReq(1_MiB);
  req.exclude = MachineId{0};
  EXPECT_EQ(*policy.Place(req, f.cluster), 1u);
}

TEST(PlacementTest, ResourceExhaustedWhenNothingFits) {
  Fixture f;
  f.Add(4, 1_GiB);
  BestFitPolicy policy;
  EXPECT_EQ(policy.Place(MemReq(2_GiB), f.cluster).status().code(),
            StatusCode::kResourceExhausted);
  FirstFitPolicy ff;
  EXPECT_EQ(ff.Place(MemReq(2_GiB), f.cluster).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(PlacementTest, LocalityAwareHonorsNearWithinSlack) {
  Fixture f;
  f.Add(4, 8_GiB);
  f.Add(4, 6_GiB);  // slightly less free memory
  LocalityAwarePolicy policy(/*slack=*/0.5);
  PlacementRequest req = MemReq(1_MiB);
  req.near = MachineId{1};
  // Machine 1 has 6/8 = 75% of the best score; within 50% slack -> near wins.
  EXPECT_EQ(*policy.Place(req, f.cluster), 1u);
}

TEST(PlacementTest, LocalityAwareRejectsNearBeyondSlack) {
  Fixture f;
  f.Add(4, 8_GiB);
  f.Add(4, 1_GiB);
  LocalityAwarePolicy policy(/*slack=*/0.5);
  PlacementRequest req = MemReq(1_MiB);
  req.near = MachineId{1};
  // 1/8 of the best score is far below the 50% threshold.
  EXPECT_EQ(*policy.Place(req, f.cluster), 0u);
}

TEST(PlacementTest, LocalityAwareFallsBackWhenNearInfeasible) {
  Fixture f;
  f.Add(4, 8_GiB);
  f.Add(4, 1_GiB);
  LocalityAwarePolicy policy(1.0);  // always prefer near if feasible
  PlacementRequest req = MemReq(2_GiB);
  req.near = MachineId{1};
  EXPECT_EQ(*policy.Place(req, f.cluster), 0u);
}

}  // namespace
}  // namespace quicksand
