#include <gtest/gtest.h>

#include "quicksand/adapt/stage_scaler.h"
#include "quicksand/app/image.h"
#include "quicksand/app/preprocess_stage.h"
#include "quicksand/app/trainer.h"
#include "quicksand/common/bytes.h"

namespace quicksand {
namespace {

TEST(ImageGeneratorTest, DeterministicPerId) {
  ImageGenerator gen(7);
  const Image a = gen.Generate(42);
  const Image b = gen.Generate(42);
  EXPECT_EQ(a.encoded_bytes, b.encoded_bytes);
  const Image c = gen.Generate(43);
  EXPECT_NE(a.encoded_bytes, c.encoded_bytes);
}

TEST(ImageGeneratorTest, SizesNearMean) {
  ImageDistribution dist;
  dist.mean_encoded_bytes = 100000;
  dist.stddev_fraction = 0.2;
  ImageGenerator gen(7, dist);
  double sum = 0;
  for (uint64_t i = 0; i < 2000; ++i) {
    const Image img = gen.Generate(i);
    EXPECT_GE(img.encoded_bytes, 10000);
    sum += static_cast<double>(img.encoded_bytes);
  }
  EXPECT_NEAR(sum / 2000.0, 100000.0, 3000.0);
}

TEST(PreprocessCostTest, ScalesWithBytes) {
  PreprocessCostModel model;
  Image small;
  small.encoded_bytes = 1000;
  Image large;
  large.encoded_bytes = 100000;
  EXPECT_LT(PreprocessCost(small, model), PreprocessCost(large, model));
  EXPECT_GE(PreprocessCost(small, model), model.base);
}

struct PipelineFixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  PipelineFixture() {
    for (int i = 0; i < 2; ++i) {
      MachineSpec spec;
      spec.cores = 8;
      spec.memory_bytes = 4_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ctx ctx() { return rt->CtxOn(0); }
};

PreprocessStageConfig LightImages() {
  PreprocessStageConfig config;
  config.images.mean_encoded_bytes = 10000;
  config.cost.base = Duration::Micros(200);
  config.cost.ns_per_byte = 80.0;  // ~1ms per image
  return config;
}

TEST(PreprocessStageTest, ProducersFillQueue) {
  PipelineFixture f;
  auto queue = *f.sim.BlockOn(ShardedQueue<Tensor>::Create(f.ctx()));
  PreprocessStage stage(*f.rt, queue, LightImages());
  EXPECT_TRUE(f.sim.BlockOn(stage.AddProducer(f.ctx())).ok());
  EXPECT_TRUE(f.sim.BlockOn(stage.AddProducer(f.ctx())).ok());
  EXPECT_EQ(stage.producer_count(), 2);
  f.sim.RunUntil(f.sim.Now() + 50_ms);
  // ~2 producers x 1ms/image x 50ms = ~100 images.
  EXPECT_GT(stage.images_produced(), 50);
  Result<int64_t> backlog = f.sim.BlockOn(queue.Size(f.ctx()));
  ASSERT_TRUE(backlog.ok());
  EXPECT_GT(*backlog, 0);
  f.sim.BlockOn(stage.Shutdown(f.ctx()));
}

TEST(PreprocessStageTest, RemoveProducerStopsItsWork) {
  PipelineFixture f;
  auto queue = *f.sim.BlockOn(ShardedQueue<Tensor>::Create(f.ctx()));
  PreprocessStage stage(*f.rt, queue, LightImages());
  EXPECT_TRUE(f.sim.BlockOn(stage.AddProducer(f.ctx())).ok());
  f.sim.RunUntil(f.sim.Now() + 20_ms);
  EXPECT_TRUE(f.sim.BlockOn(stage.RemoveProducer(f.ctx())).ok());
  EXPECT_EQ(stage.producer_count(), 0);
  const int64_t at_stop = stage.images_produced();
  f.sim.RunUntil(f.sim.Now() + 20_ms);
  EXPECT_EQ(stage.images_produced(), at_stop);
}

TEST(GpuTrainerTest, ConsumesFromQueue) {
  PipelineFixture f;
  auto queue = *f.sim.BlockOn(ShardedQueue<Tensor>::Create(f.ctx()));
  // Preload tensors.
  for (int i = 0; i < 200; ++i) {
    Tensor t;
    t.image_id = static_cast<uint64_t>(i);
    t.bytes = 1000;
    QS_CHECK(f.sim.BlockOn(queue.Push(f.ctx(), t)).ok());
  }
  GpuTrainerConfig cfg;
  cfg.initial_gpus = 2;
  cfg.batch_size = 10;
  cfg.batch_time = 1_ms;
  GpuTrainer trainer(*f.rt, queue, cfg);
  trainer.Start();
  f.sim.RunUntil(f.sim.Now() + 15_ms);
  // 2 GPUs x 1 batch/ms x 10 tensors = all 200 within ~10ms.
  EXPECT_EQ(trainer.tensors_consumed(), 200);
  EXPECT_EQ(trainer.batches_trained(), 20);
}

TEST(GpuTrainerTest, IdleAccumulatesWhenStarved) {
  PipelineFixture f;
  auto queue = *f.sim.BlockOn(ShardedQueue<Tensor>::Create(f.ctx()));
  GpuTrainerConfig cfg;
  cfg.initial_gpus = 1;
  GpuTrainer trainer(*f.rt, queue, cfg);
  trainer.Start();
  f.sim.RunUntil(f.sim.Now() + 10_ms);
  EXPECT_GT(trainer.TotalIdle(), 5_ms);
  EXPECT_EQ(trainer.tensors_consumed(), 0);
}

TEST(GpuTrainerTest, GpuCountChangesConsumptionRate) {
  PipelineFixture f;
  auto queue = *f.sim.BlockOn(ShardedQueue<Tensor>::Create(f.ctx()));
  for (int i = 0; i < 10000; ++i) {
    Tensor t;
    t.bytes = 100;
    QS_CHECK(f.sim.BlockOn(queue.Push(f.ctx(), t)).ok());
  }
  GpuTrainerConfig cfg;
  cfg.initial_gpus = 2;
  cfg.batch_size = 4;
  cfg.batch_time = 1_ms;
  GpuTrainer trainer(*f.rt, queue, cfg);
  trainer.Start();
  f.sim.RunUntil(f.sim.Now() + 20_ms);
  const int64_t at_2gpus = trainer.tensors_consumed();
  trainer.SetGpuCount(4);
  f.sim.RunUntil(f.sim.Now() + 20_ms);
  const int64_t delta_4gpus = trainer.tensors_consumed() - at_2gpus;
  EXPECT_NEAR(static_cast<double>(delta_4gpus), 2.0 * static_cast<double>(at_2gpus),
              0.35 * static_cast<double>(at_2gpus));
}

TEST(StageScalerTest, ScalesUpWhenGpusStarve) {
  PipelineFixture f;
  auto queue = *f.sim.BlockOn(ShardedQueue<Tensor>::Create(f.ctx()));
  PreprocessStage stage(*f.rt, queue, LightImages());
  EXPECT_TRUE(f.sim.BlockOn(stage.AddProducer(f.ctx())).ok());

  GpuTrainerConfig gpu_cfg;
  gpu_cfg.initial_gpus = 4;
  gpu_cfg.batch_size = 4;
  gpu_cfg.batch_time = 4_ms;  // 1 tensor/ms/gpu = 4/ms total vs ~1/ms produced
  GpuTrainer trainer(*f.rt, queue, gpu_cfg);
  trainer.Start();

  StageScalerConfig scaler_cfg;
  scaler_cfg.max_producers = 16;
  StageScaler scaler(*f.rt, stage, queue, trainer, scaler_cfg);
  scaler.Start();

  f.sim.RunUntil(f.sim.Now() + 100_ms);
  EXPECT_GT(stage.producer_count(), 1);
  EXPECT_GT(scaler.scale_ups(), 0);
}

TEST(StageScalerTest, ScalesDownWhenBacklogGrows) {
  PipelineFixture f;
  auto queue = *f.sim.BlockOn(ShardedQueue<Tensor>::Create(f.ctx()));
  PreprocessStage stage(*f.rt, queue, LightImages());
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(f.sim.BlockOn(stage.AddProducer(f.ctx())).ok());
  }
  GpuTrainerConfig gpu_cfg;
  gpu_cfg.initial_gpus = 1;
  gpu_cfg.batch_size = 4;
  gpu_cfg.batch_time = 40_ms;  // very slow consumer
  GpuTrainer trainer(*f.rt, queue, gpu_cfg);
  trainer.Start();

  StageScalerConfig scaler_cfg;
  scaler_cfg.min_producers = 1;
  StageScaler scaler(*f.rt, stage, queue, trainer, scaler_cfg);
  scaler.Start();

  f.sim.RunUntil(f.sim.Now() + 100_ms);
  EXPECT_LT(stage.producer_count(), 8);
  EXPECT_GT(scaler.scale_downs(), 0);
}

}  // namespace
}  // namespace quicksand
