// End-to-end durability scenario: the full stack — checkpoints, replication,
// lineage, recovery — keeps a two-stage pipeline correct through both
// failure modes the paper's substrate exhibits:
//
//  * a 5ms revocation kills a machine hosting CHECKPOINTED vector shards;
//    the final pre-death snapshot (CheckpointManager::Arm) makes the loss
//    RPO = 0, and every element reads back intact after the restore,
//  * a zero-warning crash kills a machine hosting REPLICATED map shards
//    while a lineage-enabled DistPool is still writing; the backups are
//    promoted, the pool's incomplete jobs re-execute (idempotent puts), and
//    the pipeline's output is complete and correct.
//
// The whole run must be bit-identical across same-seed executions.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/compute/dist_pool.h"
#include "quicksand/ds/sharded_map.h"
#include "quicksand/ds/sharded_vector.h"
#include "quicksand/durability/checkpoint_manager.h"
#include "quicksand/durability/recovery_coordinator.h"
#include "quicksand/durability/replication.h"

namespace quicksand {
namespace {

constexpr int kMachines = 5;
constexpr int kVectorOps = 96;
constexpr int64_t kValueBytes = 1 * kKiB;
constexpr int kMapJobs = 48;

std::string ValueFor(int i) {
  return std::string(static_cast<size_t>(kValueBytes),
                     static_cast<char>('a' + i % 26));
}

Task<int64_t> WriteVector(Ctx ctx, ShardedVector<std::string>* vec, int ops) {
  int64_t errors = 0;
  for (int i = 0; i < ops; ++i) {
    Result<uint64_t> index = co_await vec->PushBack(ctx, ValueFor(i));
    if (!index.ok() || *index != static_cast<uint64_t>(i)) {
      ++errors;
    }
  }
  co_return errors;
}

// Machine (not the controller, not `exclude`) hosting the most shards of
// the given router, so the injected failures reliably hit protected state.
template <typename DS>
Task<MachineId> BusiestShardHost(Ctx ctx, DS* ds, MachineId exclude) {
  co_await ds->router().Refresh(ctx);
  std::vector<int> shards(kMachines, 0);
  for (const ShardInfo& info : ds->router().cached_shards()) {
    const MachineId host = ctx.rt->LocationOf(info.proclet);
    if (host != kInvalidMachineId) {
      ++shards[host];
    }
  }
  MachineId busiest = kInvalidMachineId;
  for (MachineId m = 1; m < kMachines; ++m) {
    if (m == exclude) {
      continue;
    }
    if (busiest == kInvalidMachineId || shards[m] > shards[busiest]) {
      busiest = m;
    }
  }
  co_return busiest;
}

std::string RunScenario(bool check_expectations) {
  Simulator sim;
  Cluster cluster{sim};
  for (int i = 0; i < kMachines; ++i) {
    MachineSpec spec;
    spec.memory_bytes = 2 * kGiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  FaultInjector faults(sim, cluster);
  rt.AttachFaultInjector(faults);

  CheckpointManager checkpoints(rt,
                                CheckpointManager::Options{Duration::Millis(5)});
  ReplicationManager replication(rt);
  RecoveryCoordinator recovery(rt);
  recovery.AttachCheckpoints(&checkpoints);
  recovery.AttachReplication(&replication);
  checkpoints.Arm(faults);
  replication.Arm(faults);
  recovery.Arm(faults);
  checkpoints.Start();

  Ctx ctx = rt.CtxOn(0);

  // Stage outputs: a checkpointed vector and a replicated map.
  ShardedVector<std::string>::Options vopt;
  vopt.max_shard_bytes = 24 * kKiB;
  vopt.checkpoints = &checkpoints;
  ShardedVector<std::string> vec =
      *sim.BlockOn(ShardedVector<std::string>::Create(ctx, vopt));

  ShardedMap<int64_t, int64_t>::Options mopt;
  mopt.replication = &replication;
  ShardedMap<int64_t, int64_t> map =
      *sim.BlockOn(ShardedMap<int64_t, int64_t>::Create(ctx, mopt));

  // --- Phase 1: checkpointed shards vs a 5ms revocation --------------------
  const int64_t vec_write_errors =
      sim.BlockOn(WriteVector(ctx, &vec, kVectorOps));
  // Writer quiesced; let the periodic loop commit the last delta so the
  // pre-death snapshot has nothing left to save even if it loses the race.
  sim.RunFor(Duration::Millis(11));
  const MachineId revoked =
      sim.BlockOn(BusiestShardHost(ctx, &vec, kInvalidMachineId));
  faults.ScheduleRevocation(sim.Now() + Duration::Millis(1), revoked,
                            Duration::Millis(5));
  sim.RunFor(Duration::Millis(40));

  // --- Phase 2: replicated shards + lineage pool vs a cold crash -----------
  DistPool::Options popt;
  popt.initial_proclets = 2;
  popt.lineage = true;
  DistPool pool = *sim.BlockOn(DistPool::Create(ctx, popt));
  recovery.OnRecovered([&pool](Ctx hctx, MachineId) -> Task<> {
    (void)co_await pool.RecoverLost(hctx);
    (void)co_await pool.ResubmitIncomplete(hctx);
  });

  // Each job writes one (idempotent) key; duplicates from at-least-once
  // re-execution overwrite with the same value.
  for (int i = 0; i < kMapJobs; ++i) {
    Status submitted = sim.BlockOn(pool.Submit(
        ctx, [i, &rt, &map](Ctx jctx) -> Task<> {
          co_await jctx.rt->sim().Sleep(Duration::Micros(100));
          (void)co_await map.Put(jctx, static_cast<int64_t>(i),
                                 static_cast<int64_t>(i) * 3 + 1);
        }));
    if (check_expectations) {
      EXPECT_TRUE(submitted.ok());
    }
    (void)rt;
  }
  // Crash the busiest map-shard host at ~t=50% of the pool's work.
  const MachineId crashed = sim.BlockOn(BusiestShardHost(ctx, &map, revoked));
  faults.ScheduleCrash(sim.Now() + Duration::Millis(2), crashed);
  sim.RunFor(Duration::Millis(40));
  sim.BlockOn(pool.Drain(ctx));
  sim.BlockOn(pool.ResubmitIncomplete(ctx));  // safety net: pending => rerun
  sim.BlockOn(pool.Drain(ctx));
  checkpoints.Stop();

  // --- Verification ---------------------------------------------------------
  int64_t vec_read_errors = 0;
  for (int i = 0; i < kVectorOps; ++i) {
    Result<std::string> value =
        sim.BlockOn(vec.Get(ctx, static_cast<uint64_t>(i)));
    if (!value.ok() || *value != ValueFor(i)) {
      ++vec_read_errors;
    }
  }
  int64_t map_read_errors = 0;
  for (int i = 0; i < kMapJobs; ++i) {
    Result<int64_t> value = sim.BlockOn(map.Get(ctx, static_cast<int64_t>(i)));
    if (!value.ok() || *value != static_cast<int64_t>(i) * 3 + 1) {
      ++map_read_errors;
    }
  }
  const Result<int64_t> map_size = sim.BlockOn(map.Size(ctx));

  if (check_expectations) {
    EXPECT_NE(revoked, kInvalidMachineId);
    EXPECT_NE(crashed, kInvalidMachineId);
    EXPECT_NE(revoked, crashed);
    EXPECT_EQ(faults.revocations(), 1);
    EXPECT_EQ(faults.crashes(), 2);  // revocation deadline + cold crash

    // The pipeline completed correctly despite both failures.
    EXPECT_EQ(vec_write_errors, 0);
    EXPECT_EQ(vec_read_errors, 0);
    EXPECT_EQ(map_read_errors, 0);
    EXPECT_TRUE(map_size.ok());
    if (map_size.ok()) {
      EXPECT_EQ(*map_size, kMapJobs);
    }

    // Every proclet lost on the failed machines came back: the coordinator
    // restored or promoted everything it was accountable for (compute pool
    // members are replaced, not restored, and depots are rebuilt by the
    // checkpoint manager — neither counts against the report).
    EXPECT_EQ(recovery.reports().size(), 2u);
    // Only compute-pool members may be unrecoverable: they are replaced via
    // lineage (RecoverLost), not restored from state.
    EXPECT_EQ(recovery.total_unrecoverable(), pool.lost_members());
    int64_t recovered = 0;
    for (const RecoveryReport& report : recovery.reports()) {
      EXPECT_EQ(report.promoted + report.restored + report.unrecoverable,
                report.lost);
      recovered += report.promoted + report.restored;
    }
    EXPECT_EQ(rt.stats().restored_proclets, recovered);
    EXPECT_GT(rt.stats().restored_proclets, 0);
    EXPECT_GT(checkpoints.restores() + replication.promotions(), 0);
  }

  std::ostringstream digest;
  digest << faults.crashes() << '|' << faults.revocations() << '|'
         << rt.stats().lost_proclets << '|' << rt.stats().restored_proclets
         << '|' << rt.stats().checkpoint_bytes << '|'
         << checkpoints.checkpoints_taken() << '|' << checkpoints.restores()
         << '|' << replication.promotions() << '|'
         << replication.mutations_shipped() << '|' << pool.deduped_jobs()
         << '|' << pool.lost_members() << '|' << vec_write_errors << '|'
         << vec_read_errors << '|' << map_read_errors << '|'
         << (map_size.ok() ? *map_size : -1);
  for (const RecoveryReport& r : recovery.reports()) {
    digest << '|' << r.machine << ':' << r.lost << ':' << r.promoted << ':'
           << r.restored << ':' << r.unrecoverable << ':' << r.elapsed.nanos();
  }
  digest << '|' << sim.Now().nanos();
  return digest.str();
}

TEST(DurabilityRecoveryTest, PipelineSurvivesRevocationAndCrash) {
  RunScenario(/*check_expectations=*/true);
}

TEST(DurabilityRecoveryTest, SameSeedRunsAreBitIdentical) {
  const std::string first = RunScenario(/*check_expectations=*/false);
  const std::string second = RunScenario(/*check_expectations=*/false);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

}  // namespace
}  // namespace quicksand
