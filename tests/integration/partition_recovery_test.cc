// End-to-end partition scenarios — the acceptance gate for the network
// failure model:
//
//  * gray failure: a one-way partition cuts the primary's host off from the
//    controller (heartbeats AND rpc responses lost; the host keeps
//    running). The detector suspects then confirms, the runtime declares
//    the machine dead and fences its proclets, the recovery coordinator
//    promotes the backup at a fresh epoch, and the at-least-once writer's
//    retries dedup — no acked write lost or double-applied. After the
//    partition heals, every stale-epoch RPC and replayed migration command
//    is fenced; the late heartbeats are posthumous and ignored.
//  * transient partition: shorter than confirm_after — one false suspicion,
//    an exoneration, zero recoveries, and the writer just rides it out.
//
// Both runs must be bit-identical across same-seed executions.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/durability/recovery_coordinator.h"
#include "quicksand/durability/replication.h"
#include "quicksand/health/failure_detector.h"
#include "quicksand/proclet/fenced_kv_proclet.h"

namespace quicksand {
namespace {

constexpr int kWrites = 24;

FailureDetectorOptions FastOptions() {
  FailureDetectorOptions opt;
  opt.controller = 0;
  opt.heartbeat_period = Duration::Millis(1);
  opt.suspect_after = Duration::Millis(3);
  opt.confirm_after = Duration::Millis(8);
  opt.check_period = Duration::Micros(500);
  return opt;
}

Task<FencedKvProclet::PutResult> RawPut(Ref<FencedKvProclet> kv, Ctx ctx,
                                        uint64_t epoch, uint64_t rid,
                                        uint64_t key, int64_t value) {
  auto call = kv.Call(
      ctx, [epoch, rid, key, value](FencedKvProclet& p)
      -> Task<FencedKvProclet::PutResult> {
        co_return p.Put(epoch, rid, key, value);
      });
  co_return co_await std::move(call);
}

// The at-least-once client: one stable request id per logical write,
// re-resolved epoch per attempt, retries through network loss and failover.
Task<bool> AckedPut(Ref<FencedKvProclet> kv, Runtime& rt, uint64_t rid,
                    uint64_t key, int64_t value) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const uint64_t epoch = rt.EpochOf(kv.id());
    if (epoch == 0) {
      co_await rt.sim().Sleep(Duration::Micros(500));
      continue;
    }
    bool lost = false;  // co_await is not allowed inside a catch handler
    try {
      FencedKvProclet::PutResult result =
          co_await RawPut(kv, rt.CtxOn(0), epoch, rid, key, value);
      if (result.applied || result.duplicate) {
        co_return true;
      }
    } catch (const ProcletUnreachableError&) {
    } catch (const ProcletLostError&) {
      lost = true;
    }
    if (lost) {
      (void)co_await rt.AwaitRestore(kv.id(), Duration::Millis(50));
    }
    co_await rt.sim().Sleep(Duration::Micros(500));
  }
  co_return false;
}

Task<> Writer(Ref<FencedKvProclet> kv, Runtime& rt, int writes, int64_t& acked,
              int64_t& failed) {
  for (int i = 0; i < writes; ++i) {
    const uint64_t key = static_cast<uint64_t>(i);
    if (co_await AckedPut(kv, rt, 100 + key, key,
                          static_cast<int64_t>(key) * 5 + 1)) {
      ++acked;
    } else {
      ++failed;
    }
    co_await rt.sim().Sleep(Duration::Millis(1));
  }
}

std::string RunGrayFailureScenario(bool check) {
  Simulator sim;
  Cluster cluster{sim};
  for (int i = 0; i < 4; ++i) {
    MachineSpec spec;
    spec.cores = 4;
    spec.memory_bytes = 2_GiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  FaultInjector faults(sim, cluster);
  rt.AttachFaultInjector(faults);

  FailureDetector detector(sim, cluster, FastOptions());
  ReplicationManager replication(rt);
  RecoveryCoordinator recovery(rt);
  recovery.AttachReplication(&replication);
  // Ordering matters: loss bookkeeping (runtime) before repair
  // (replication) before recovery, mirroring the FaultInjector chain.
  rt.AttachFailureDetector(detector);
  replication.ArmDetector(detector);
  recovery.ArmDetector(detector);
  detector.Start();

  Ctx ctx = rt.CtxOn(0);
  PlacementRequest req;
  req.heap_bytes = 1_MiB;
  req.pinned = 1;
  Ref<FencedKvProclet> kv =
      *sim.BlockOn(rt.Create<FencedKvProclet>(ctx, req));
  const Status replicated =
      sim.BlockOn(replication.ReplicateAs<FencedKvProclet>(ctx, kv.id()));
  const MachineId backup_machine = replication.BackupMachineOf(kv.id());
  const uint64_t epoch_before = rt.EpochOf(kv.id());

  int64_t acked = 0, failed = 0;
  sim.Spawn(Writer(kv, rt, kWrites, acked, failed), "writer");

  // One-way partition: m1 can reach nobody's ears — heartbeats to the
  // controller and rpc responses to callers all vanish — but m1 itself
  // keeps receiving and executing. The asymmetric gray failure.
  const SimTime partition_at = sim.Now() + Duration::Millis(5);
  faults.SchedulePartitionOneWay(partition_at, 1, 0, Duration::Millis(30));
  faults.SchedulePartitionOneWay(partition_at, 1, 2, Duration::Millis(30));
  faults.SchedulePartitionOneWay(partition_at, 1, 3, Duration::Millis(30));

  sim.RunFor(Duration::Millis(200));
  detector.Stop();

  // Post-heal: a client still holding the pre-failover epoch is fenced,
  // and a replayed migration command from before the failover aborts.
  const FencedKvProclet::PutResult stale_put =
      sim.BlockOn(RawPut(kv, ctx, epoch_before, /*rid=*/9999, 0, -1));
  const Status stale_migrate = sim.BlockOn(rt.Migrate(kv.id(), 3, epoch_before));

  const MachineId owner = rt.LocationOf(kv.id());
  FencedKvProclet* p = rt.UnsafeGet<FencedKvProclet>(kv.id());
  int64_t wrong_values = 0, wrong_applies = 0;
  for (int i = 0; i < kWrites; ++i) {
    const uint64_t key = static_cast<uint64_t>(i);
    if (p == nullptr || !p->Get(key).ok() ||
        *p->Get(key) != static_cast<int64_t>(key) * 5 + 1) {
      ++wrong_values;
    }
    if (p == nullptr || p->ApplyCount(key) != 1) {
      ++wrong_applies;
    }
  }

  if (check) {
    EXPECT_TRUE(replicated.ok());
    EXPECT_NE(backup_machine, kInvalidMachineId);

    // Detection: suspected once, confirmed once, never exonerated.
    EXPECT_EQ(detector.suspicions(), 1);
    EXPECT_EQ(detector.confirmations(), 1);
    EXPECT_EQ(detector.false_suspicions(), 0);
    EXPECT_TRUE(detector.ConfirmedDead(1));
    // The machine never fail-stopped — it was declared dead while running,
    // and its post-heal heartbeats were ignored.
    EXPECT_FALSE(cluster.machine(1).failed());
    EXPECT_FALSE(cluster.machine(1).accepting());
    EXPECT_GT(detector.posthumous_heartbeats(), 0);
    EXPECT_EQ(rt.stats().declared_dead, 1);
    EXPECT_EQ(rt.stats().crashes, 0);

    // Failover: exactly one promotion, the backup is the one live owner,
    // at a fresh epoch.
    EXPECT_EQ(replication.promotions(), 1);
    EXPECT_EQ(owner, backup_machine);
    EXPECT_EQ(rt.EpochOf(kv.id()), epoch_before + 1);

    // The writer rode the failover: everything acked, exactly once.
    EXPECT_EQ(acked, kWrites);
    EXPECT_EQ(failed, 0);
    EXPECT_EQ(wrong_values, 0);
    EXPECT_EQ(wrong_applies, 0);

    // Stale tokens fence instead of corrupting.
    EXPECT_TRUE(stale_put.fenced);
    EXPECT_FALSE(stale_put.applied);
    EXPECT_EQ(stale_migrate.code(), StatusCode::kAborted);
    EXPECT_EQ(rt.stats().fenced_migrations, 1);
    EXPECT_GT(rt.stats().fenced_rpcs, 0);
    EXPECT_EQ(rt.LocationOf(kv.id()), owner);

    // The network really did eat traffic.
    EXPECT_GT(cluster.fabric().dropped_transfers(), 0);
    EXPECT_GT(rt.stats().response_retransmits, 0);
  }

  std::ostringstream digest;
  digest << acked << '|' << failed << '|' << wrong_values << '|'
         << wrong_applies << '|' << owner << '|' << rt.EpochOf(kv.id()) << '|'
         << detector.suspicions() << '|' << detector.false_suspicions() << '|'
         << detector.confirmations() << '|' << detector.heartbeats_sent()
         << '|' << detector.heartbeats_delivered() << '|'
         << detector.posthumous_heartbeats() << '|'
         << rt.stats().declared_dead << '|' << rt.stats().fenced_migrations
         << '|' << rt.stats().fenced_rpcs << '|'
         << rt.stats().undelivered_invocations << '|'
         << rt.stats().undelivered_lookups << '|'
         << rt.stats().response_retransmits << '|'
         << rt.stats().unreachable_invocations << '|'
         << replication.promotions() << '|' << replication.mutations_shipped()
         << '|' << cluster.fabric().dropped_transfers() << '|'
         << cluster.fabric().total_messages() << '|' << sim.Now().nanos();
  return digest.str();
}

TEST(PartitionRecoveryTest, GrayFailureFailsOverWithFencing) {
  RunGrayFailureScenario(/*check=*/true);
}

TEST(PartitionRecoveryTest, SameSeedRunsAreBitIdentical) {
  const std::string first = RunGrayFailureScenario(/*check=*/false);
  const std::string second = RunGrayFailureScenario(/*check=*/false);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(PartitionRecoveryTest, TransientPartitionIsSuspectedThenForgiven) {
  Simulator sim;
  Cluster cluster{sim};
  for (int i = 0; i < 4; ++i) {
    MachineSpec spec;
    spec.cores = 4;
    spec.memory_bytes = 2_GiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  FaultInjector faults(sim, cluster);
  rt.AttachFaultInjector(faults);

  FailureDetector detector(sim, cluster, FastOptions());
  ReplicationManager replication(rt);
  RecoveryCoordinator recovery(rt);
  recovery.AttachReplication(&replication);
  rt.AttachFailureDetector(detector);
  replication.ArmDetector(detector);
  recovery.ArmDetector(detector);
  detector.Start();

  Ctx ctx = rt.CtxOn(0);
  PlacementRequest req;
  req.heap_bytes = 1_MiB;
  req.pinned = 1;
  Ref<FencedKvProclet> kv =
      *sim.BlockOn(rt.Create<FencedKvProclet>(ctx, req));
  ASSERT_TRUE(
      sim.BlockOn(replication.ReplicateAs<FencedKvProclet>(ctx, kv.id())).ok());

  int64_t acked = 0, failed = 0;
  sim.Spawn(Writer(kv, rt, kWrites, acked, failed), "writer");

  // 5ms outage: past suspect_after (3ms), well short of confirm_after (8ms
  // from last heartbeat). The writer stalls and retries; nobody dies.
  faults.SchedulePartitionOneWay(sim.Now() + Duration::Millis(5), 1, 0,
                                 Duration::Millis(5));
  sim.RunFor(Duration::Millis(120));
  detector.Stop();

  EXPECT_EQ(detector.suspicions(), 1);
  EXPECT_EQ(detector.false_suspicions(), 1);
  EXPECT_EQ(detector.confirmations(), 0);
  EXPECT_EQ(detector.StateOf(1), Health::kAlive);
  EXPECT_TRUE(cluster.machine(1).accepting());
  EXPECT_EQ(rt.stats().declared_dead, 0);
  EXPECT_EQ(replication.promotions(), 0);

  // No failover: still owned by m1, original epoch, all writes landed once.
  EXPECT_EQ(rt.LocationOf(kv.id()), 1u);
  EXPECT_EQ(rt.EpochOf(kv.id()), 1u);
  EXPECT_EQ(acked, kWrites);
  EXPECT_EQ(failed, 0);
  FencedKvProclet* p = rt.UnsafeGet<FencedKvProclet>(kv.id());
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < kWrites; ++i) {
    const uint64_t key = static_cast<uint64_t>(i);
    ASSERT_TRUE(p->Get(key).ok()) << "key " << key;
    EXPECT_EQ(*p->Get(key), static_cast<int64_t>(key) * 5 + 1);
    EXPECT_EQ(p->ApplyCount(key), 1);
  }
}

}  // namespace
}  // namespace quicksand
