// End-to-end failure scenario: a cluster under antagonist load loses one
// machine with zero warning (crash) and another with a 5ms revocation
// warning. The emergency evacuator must save (nearly) everything on the
// revoked machine; everything on the crashed machine must be reported lost
// via ProcletLostError — promptly, never by hanging — and the entire run
// must be bit-identical across same-seed executions.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "quicksand/cluster/antagonist.h"
#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/proclet/memory_proclet.h"
#include "quicksand/sched/evacuator.h"

namespace quicksand {
namespace {

constexpr int kMachines = 4;
constexpr int kProcletsPerMachine = 8;
constexpr int64_t kProcletBytes = 1_MiB;

enum class Probe { kPending, kOk, kLost, kOther };

Task<> ProbeCall(Runtime& rt, Ref<MemoryProclet> p, Probe* out) {
  auto call = p.Call(rt.CtxOn(0), [](MemoryProclet& m) -> Task<int64_t> {
    co_return static_cast<int64_t>(m.object_count());
  });
  try {
    (void)co_await std::move(call);
    *out = Probe::kOk;
  } catch (const ProcletLostError&) {
    *out = Probe::kLost;
  } catch (...) {
    *out = Probe::kOther;
  }
}

// Runs the whole scenario and returns a digest of everything observable.
// Called twice; the digests must match bit for bit.
std::string RunScenario(bool check_expectations) {
  Simulator sim;
  Cluster cluster{sim};
  for (int i = 0; i < kMachines; ++i) {
    MachineSpec spec;
    spec.cores = 8;
    spec.memory_bytes = 2_GiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  FaultInjector faults(sim, cluster);
  rt.AttachFaultInjector(faults);
  EmergencyEvacuator evacuator(rt);
  evacuator.Arm(faults);

  // Background load: anti-phased square-wave antagonists on every machine.
  std::vector<std::unique_ptr<PhasedAntagonist>> antagonists;
  for (int i = 0; i < kMachines; ++i) {
    PhasedAntagonistConfig config;
    config.busy = 10_ms;
    config.idle = 10_ms;
    config.phase_offset = Duration::Millis(5 * i);
    antagonists.push_back(
        std::make_unique<PhasedAntagonist>(sim, cluster.machine(i), config));
    antagonists.back()->Start();
  }

  // 24 proclets pinned across machines 1..3 (machine 0 is the controller).
  std::vector<Ref<MemoryProclet>> proclets;
  for (MachineId m = 1; m < kMachines; ++m) {
    for (int i = 0; i < kProcletsPerMachine; ++i) {
      PlacementRequest req;
      req.heap_bytes = kProcletBytes;
      req.pinned = m;
      proclets.push_back(*sim.BlockOn(rt.Create<MemoryProclet>(rt.CtxOn(0), req)));
    }
  }

  // Machine 1 crashes cold at 20ms; machine 2 gets a 5ms warning at 30ms.
  faults.ScheduleCrash(SimTime::Zero() + 20_ms, 1);
  faults.ScheduleRevocation(SimTime::Zero() + 30_ms, 2, 5_ms);
  sim.RunUntil(SimTime::Zero() + 60_ms);

  // Probe every proclet: survivors answer, lost ones throw ProcletLostError.
  // A bounded run proves none of them hangs.
  std::vector<Probe> outcomes(proclets.size(), Probe::kPending);
  for (size_t i = 0; i < proclets.size(); ++i) {
    sim.Spawn(ProbeCall(rt, proclets[i], &outcomes[i]), "probe");
  }
  sim.RunUntil(sim.Now() + 10_ms);

  if (check_expectations) {
    EXPECT_EQ(faults.crashes(), 2);  // the cold crash + the revocation deadline
    EXPECT_EQ(faults.revocations(), 1);
    EXPECT_GE(rt.stats().crashes, 2);

    EXPECT_EQ(evacuator.reports().size(), 1u);
    if (!evacuator.reports().empty()) {
      const EvacuationReport& report = evacuator.reports().front();
      EXPECT_EQ(report.machine, 2u);
      EXPECT_EQ(report.considered, kProcletsPerMachine);
      // The acceptance bar: >= 90% of the revoked machine's proclets survive.
      EXPECT_GE(report.evacuated * 10, report.considered * 9);
      EXPECT_LE(report.elapsed, 5_ms);
    }

    for (size_t i = 0; i < proclets.size(); ++i) {
      EXPECT_NE(outcomes[i], Probe::kPending) << "probe " << i << " hung";
      EXPECT_NE(outcomes[i], Probe::kOther) << "probe " << i << " wrong error";
      if (rt.IsLost(proclets[i].id())) {
        EXPECT_EQ(outcomes[i], Probe::kLost) << "probe " << i;
      } else {
        EXPECT_EQ(outcomes[i], Probe::kOk) << "probe " << i;
        EXPECT_NE(proclets[i].Location(), 1u);
        EXPECT_NE(proclets[i].Location(), 2u);
      }
    }
    // Machine 1's proclets all died; machine 2 lost only what was abandoned.
    EXPECT_EQ(rt.stats().lost_proclets,
              kProcletsPerMachine + evacuator.total_abandoned());
  }

  std::ostringstream digest;
  digest << faults.crashes() << '|' << faults.revocations() << '|'
         << rt.stats().crashes << '|' << rt.stats().lost_proclets << '|'
         << rt.stats().migrations << '|' << rt.stats().failed_migrations << '|'
         << evacuator.total_evacuated() << '|' << evacuator.total_abandoned();
  for (const EvacuationReport& r : evacuator.reports()) {
    digest << '|' << r.machine << ':' << r.considered << ':' << r.evacuated
           << ':' << r.abandoned << ':' << r.elapsed.nanos();
  }
  for (size_t i = 0; i < proclets.size(); ++i) {
    digest << '|' << static_cast<int>(outcomes[i]);
    if (!rt.IsLost(proclets[i].id())) {
      digest << '@' << proclets[i].Location();
    }
  }
  digest << '|' << sim.Now().nanos();
  return digest.str();
}

TEST(FailureRecoveryTest, CrashAndRevocationUnderAntagonistLoad) {
  RunScenario(/*check_expectations=*/true);
}

TEST(FailureRecoveryTest, SameSeedRunsAreBitIdentical) {
  const std::string first = RunScenario(/*check_expectations=*/false);
  const std::string second = RunScenario(/*check_expectations=*/false);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

}  // namespace
}  // namespace quicksand
