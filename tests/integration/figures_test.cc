// Integration tests: miniature versions of the paper's three experiments,
// asserting the claims the figures make. The bench binaries in bench/ are
// the full-scale versions of these scenarios.

#include <gtest/gtest.h>

#include "quicksand/adapt/stage_scaler.h"
#include "quicksand/app/preprocess_stage.h"
#include "quicksand/app/trainer.h"
#include "quicksand/cluster/antagonist.h"
#include "quicksand/common/bytes.h"
#include "quicksand/compute/parallel.h"
#include "quicksand/sched/global_rebalancer.h"
#include "quicksand/sched/local_reactor.h"

namespace quicksand {
namespace {

// --- Fig. 1: harvest idle CPU by migrating every ~10ms -------------------------

struct Counter {
  int64_t completed = 0;
};

ComputeProclet::Job FillerJob(Duration remaining, std::shared_ptr<Counter> counter) {
  return [remaining, counter](Ctx ctx) -> Task<> {
    auto* proclet = ctx.rt->UnsafeGet<ComputeProclet>(ctx.caller_proclet);
    const Duration left =
        co_await ctx.rt->cluster().machine(ctx.machine).cpu().RunCancellable(
            remaining, kPriorityNormal, proclet->cancel_token());
    if (left > Duration::Zero()) {
      (void)proclet->SubmitFromJob(FillerJob(left, counter));
      co_return;
    }
    ++counter->completed;
  };
}

Task<> FeedForever(Runtime& rt, Ref<ComputeProclet> proclet,
                   std::shared_ptr<Counter> counter) {
  for (;;) {
    auto* p = rt.UnsafeGet<ComputeProclet>(proclet.id());
    if (p != nullptr && !p->gate_closed()) {
      while (p->queue_depth() + p->inflight() < 12) {
        (void)p->Submit(FillerJob(Duration::Micros(100), counter));
      }
    }
    co_await rt.sim().Sleep(Duration::Micros(100));
  }
}

int64_t RunFiller(bool fungible) {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < 2; ++i) {
    MachineSpec spec;
    spec.cores = 4;
    spec.memory_bytes = 4_GiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  PhasedAntagonistConfig phase;
  phase.busy = 10_ms;
  phase.idle = 10_ms;
  PhasedAntagonist ant0(sim, cluster.machine(0), phase);
  ant0.Start();
  phase.phase_offset = 10_ms;
  PhasedAntagonist ant1(sim, cluster.machine(1), phase);
  ant1.Start();

  auto counter = std::make_shared<Counter>();
  PlacementRequest req;
  req.heap_bytes = 64_KiB;
  req.pinned = MachineId{0};
  Ref<ComputeProclet> filler =
      *sim.BlockOn(rt.Create<ComputeProclet>(rt.CtxOn(0), req, 4));
  sim.Spawn(FeedForever(rt, filler, counter), "feeder");
  std::vector<std::unique_ptr<LocalReactor>> reactors;
  if (fungible) {
    reactors = StartLocalReactors(rt);
  }
  sim.RunUntil(SimTime::Zero() + 100_ms);
  if (fungible) {
    EXPECT_GE(rt.stats().migrations, 5);
    EXPECT_LT(rt.stats().migration_latency.Percentile(99), 1_ms)
        << "paper claim: sub-millisecond migration";
  }
  return counter->completed;
}

TEST(Fig1Integration, FungibleFillerBeatsStaticByNearly2x) {
  const int64_t fixed = RunFiller(/*fungible=*/false);
  const int64_t fungible = RunFiller(/*fungible=*/true);
  // Ideal = 4 cores x 10 tasks/ms x 100ms = 4000. Static gets ~half the
  // time; fungible follows the idle machine.
  EXPECT_LT(fixed, 2300);
  EXPECT_GT(fungible, 3400);
  EXPECT_GT(static_cast<double>(fungible) / static_cast<double>(fixed), 1.6);
}

// --- Fig. 2: imbalanced machines match the single-machine baseline -------------

double RunMiniPipeline(std::vector<MachineSpec> machines) {
  Simulator sim;
  Cluster cluster(sim);
  for (MachineSpec& spec : machines) {
    spec.cpu_quantum = Duration::Micros(200);
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  auto reactors = StartLocalReactors(rt);
  GlobalRebalancerConfig rebalance_cfg;
  rebalance_cfg.period = Duration::Millis(20);
  GlobalRebalancer rebalancer(rt, rebalance_cfg);
  rebalancer.Start();
  const Ctx ctx = rt.CtxOn(0);

  ImageGenerator generator(99);
  auto vec = *sim.BlockOn(ShardedVector<Image>::Create(ctx));
  constexpr int64_t kImages = 600;  // ~120 MiB, ~12 core-seconds
  for (int64_t i = 0; i < kImages; ++i) {
    QS_CHECK(sim.BlockOn(vec.PushBack(ctx, generator.Generate(
                                               static_cast<uint64_t>(i))))
                 .ok());
  }
  DistPool::Options pool_options;
  pool_options.initial_proclets = cluster.total_cores() / 2;
  pool_options.workers_per_proclet = 4;
  DistPool pool = *sim.BlockOn(DistPool::Create(ctx, pool_options));

  PreprocessCostModel cost;
  const SimTime start = sim.Now();
  ParallelOptions par;
  par.span_elems = 32;
  par.chunk_elems = 8;
  Status status = sim.BlockOn(ParallelForEach(
      ctx, pool, vec,
      [cost](Ctx job_ctx, uint64_t, Image image) -> Task<> {
        (void)co_await MigratableBurn(job_ctx, PreprocessCost(image, cost));
      },
      par));
  QS_CHECK(status.ok());
  return (sim.Now() - start).seconds();
}

TEST(Fig2Integration, ImbalancedConfigsMatchBaseline) {
  MachineSpec baseline;
  baseline.cores = 12;
  baseline.memory_bytes = 2_GiB;

  MachineSpec cpu_lite = baseline;
  cpu_lite.cores = 2;
  cpu_lite.memory_bytes = 1_GiB;
  MachineSpec cpu_heavy = baseline;
  cpu_heavy.cores = 10;
  cpu_heavy.memory_bytes = 1_GiB;

  MachineSpec mem_lite = baseline;
  mem_lite.cores = 6;
  mem_lite.memory_bytes = 256_MiB;
  MachineSpec mem_heavy = baseline;
  mem_heavy.cores = 6;
  mem_heavy.memory_bytes = 1792_MiB;

  const double t_base = RunMiniPipeline({baseline});
  const double t_cpu = RunMiniPipeline({cpu_lite, cpu_heavy});
  const double t_mem = RunMiniPipeline({mem_lite, mem_heavy});

  // The paper's shape: a few percent of the single-machine ideal.
  EXPECT_LT(t_cpu, t_base * 1.10) << "CPU-unbalanced should track baseline";
  EXPECT_LT(t_mem, t_base * 1.10) << "Mem-unbalanced should track baseline";
  EXPECT_GT(t_cpu, t_base * 0.90);
  EXPECT_GT(t_mem, t_base * 0.90);
}

// --- Fig. 3: producer count tracks GPU count in ~10-15ms -----------------------

TEST(Fig3Integration, ScalerTracksGpuToggle) {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < 2; ++i) {
    MachineSpec spec;
    spec.cores = 8;
    spec.memory_bytes = 4_GiB;
    spec.cpu_quantum = Duration::Micros(50);
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  const Ctx ctx = rt.CtxOn(0);

  auto queue = *sim.BlockOn(ShardedQueue<Tensor>::Create(ctx));
  PreprocessStageConfig stage_cfg;
  stage_cfg.images.mean_encoded_bytes = 10000;
  stage_cfg.cost.base = Duration::Micros(200);
  stage_cfg.cost.ns_per_byte = 80.0;
  PreprocessStage stage(rt, queue, stage_cfg);
  for (int i = 0; i < 3; ++i) {
    QS_CHECK(sim.BlockOn(stage.AddProducer(ctx)).ok());
  }
  GpuTrainerConfig gpu_cfg;
  gpu_cfg.initial_gpus = 3;
  gpu_cfg.max_gpus = 8;
  gpu_cfg.batch_size = 2;
  gpu_cfg.batch_time = 2_ms;
  GpuTrainer trainer(rt, queue, gpu_cfg);
  trainer.Start();
  StageScalerConfig scaler_cfg;
  scaler_cfg.max_producers = 16;
  StageScaler scaler(rt, stage, queue, trainer, scaler_cfg);
  scaler.Start();

  // The count oscillates +-1 around the equilibrium (as in the paper's
  // figure), so compare window means, not instants.
  sim.RunUntil(SimTime::Zero() + 200_ms);
  const double at_3gpus = scaler.producer_series().MeanOver(
      SimTime::Zero() + 100_ms, SimTime::Zero() + 200_ms);

  trainer.SetGpuCount(6);
  sim.RunUntil(SimTime::Zero() + 400_ms);
  const double at_6gpus = scaler.producer_series().MeanOver(
      SimTime::Zero() + 300_ms, SimTime::Zero() + 400_ms);
  EXPECT_GT(at_6gpus, at_3gpus + 1.5) << "doubling GPUs must add producers";
  EXPECT_NEAR(at_6gpus, 6.0, 2.0);

  trainer.SetGpuCount(3);
  sim.RunUntil(SimTime::Zero() + 600_ms);
  const double back_down = scaler.producer_series().MeanOver(
      SimTime::Zero() + 500_ms, SimTime::Zero() + 600_ms);
  EXPECT_LT(back_down, at_6gpus - 1.5) << "halving GPUs must remove producers";
  EXPECT_NEAR(back_down, 3.0, 2.0);

  // The adaptation itself is fast: re-toggle and measure the first change.
  trainer.SetGpuCount(6);
  const SimTime toggle = sim.Now();
  const int before = stage.producer_count();
  while (stage.producer_count() == before &&
         sim.Now() - toggle < Duration::Millis(50)) {
    sim.RunFor(Duration::Millis(1));
  }
  EXPECT_LT(sim.Now() - toggle, Duration::Millis(20))
      << "paper claim: new equilibrium within 10-15ms";
  sim.BlockOn(stage.Shutdown(ctx));
}

}  // namespace
}  // namespace quicksand
