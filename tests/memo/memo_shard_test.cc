#include "quicksand/memo/memo_shard.h"

#include <gtest/gtest.h>

#include "quicksand/common/bytes.h"
#include "quicksand/memo/memo_key.h"

namespace quicksand {
namespace {

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  Fixture() {
    MachineSpec spec;
    spec.memory_bytes = 1_GiB;
    cluster.AddMachine(spec);
    cluster.AddMachine(spec);
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ref<MemoShardProclet> Make(MachineId where, int64_t max_bytes = 4096) {
    PlacementRequest req;
    req.kind = ProcletKind::kMemory;
    req.heap_bytes = 64 << 10;
    req.pinned = where;
    MemoShardProclet::Options options;
    options.max_bytes = max_bytes;
    return *sim.BlockOn(
        rt->Create<MemoShardProclet>(rt->CtxOn(0), req, options));
  }
};

TEST(MemoKeyTest, BuilderIsDeterministicAndSaltSensitive) {
  const MemoKey a = MemoKeyBuilder().Fn(7).U64(42).Build(0);
  const MemoKey b = MemoKeyBuilder().Fn(7).U64(42).Build(0);
  EXPECT_EQ(a, b);
  // Salt changes only the freshness hash, not the routing hash: the same
  // logical computation keeps hitting the same shard across epochs.
  const MemoKey c = MemoKeyBuilder().Fn(7).U64(42).Build(1);
  EXPECT_EQ(a.route, c.route);
  EXPECT_NE(a.salted, c.salted);
  // Different args route differently.
  const MemoKey d = MemoKeyBuilder().Fn(7).U64(43).Build(0);
  EXPECT_NE(a.route, d.route);
}

TEST(MemoKeyTest, StringArgsAreLengthPrefixed) {
  // ("ab","c") must not collide with ("a","bc").
  const MemoKey a = MemoKeyBuilder().Fn(1).Str("ab").Str("c").Build(0);
  const MemoKey b = MemoKeyBuilder().Fn(1).Str("a").Str("bc").Build(0);
  EXPECT_NE(a.route, b.route);
}

TEST(MemoShardTest, PutGetRoundTripAndFreshness) {
  Fixture f;
  Ref<MemoShardProclet> shard = f.Make(1);
  MemoShardProclet* p = f.rt->UnsafeGet<MemoShardProclet>(shard.id());
  ASSERT_NE(p, nullptr);

  const MemoKey key = MemoKeyBuilder().Fn(1).U64(5).Build(0);
  EXPECT_TRUE(p->Put(key.route, key.salted, std::any(int64_t{99}), 100).ok());

  MemoShardProclet::Lookup hit = p->Get(key.route, key.salted);
  ASSERT_TRUE(hit.found);
  EXPECT_TRUE(hit.fresh);
  EXPECT_EQ(std::any_cast<int64_t>(hit.value), 99);

  // Same route, newer salt: found but NOT fresh (stale candidate).
  const MemoKey newer = MemoKeyBuilder().Fn(1).U64(5).Build(1);
  ASSERT_EQ(key.route, newer.route);
  MemoShardProclet::Lookup stale = p->Get(newer.route, newer.salted);
  EXPECT_TRUE(stale.found);
  EXPECT_FALSE(stale.fresh);

  MemoShardProclet::Lookup miss = p->Get(key.route ^ 1, key.salted);
  EXPECT_FALSE(miss.found);
  EXPECT_EQ(p->hits(), 2);
  EXPECT_EQ(p->misses(), 1);
}

TEST(MemoShardTest, LruEvictionStaysWithinBudget) {
  Fixture f;
  Ref<MemoShardProclet> shard = f.Make(1, /*max_bytes=*/1000);
  MemoShardProclet* p = f.rt->UnsafeGet<MemoShardProclet>(shard.id());
  for (uint64_t i = 0; i < 10; ++i) {
    const MemoKey k = MemoKeyBuilder().Fn(2).U64(i).Build(0);
    ASSERT_TRUE(
        p->Put(k.route, k.salted, std::any(static_cast<int64_t>(i)), 300).ok());
    EXPECT_LE(p->cached_bytes(), 1000);
  }
  EXPECT_GT(p->evictions(), 0);
  EXPECT_LE(p->entries(), 3);
  // LRU order: the most recently inserted key must survive.
  const MemoKey last = MemoKeyBuilder().Fn(2).U64(9).Build(0);
  EXPECT_TRUE(p->Get(last.route, last.salted).found);
  // The oldest key is gone.
  const MemoKey first = MemoKeyBuilder().Fn(2).U64(0).Build(0);
  EXPECT_FALSE(p->Get(first.route, first.salted).found);
}

TEST(MemoShardTest, GetRefreshesLruPosition) {
  Fixture f;
  Ref<MemoShardProclet> shard = f.Make(1, /*max_bytes=*/600);
  MemoShardProclet* p = f.rt->UnsafeGet<MemoShardProclet>(shard.id());
  const MemoKey a = MemoKeyBuilder().Fn(3).U64(0).Build(0);
  const MemoKey b = MemoKeyBuilder().Fn(3).U64(1).Build(0);
  ASSERT_TRUE(p->Put(a.route, a.salted, std::any(int64_t{0}), 250).ok());
  ASSERT_TRUE(p->Put(b.route, b.salted, std::any(int64_t{1}), 250).ok());
  // Touch `a` so `b` becomes the LRU victim.
  ASSERT_TRUE(p->Get(a.route, a.salted).found);
  const MemoKey c = MemoKeyBuilder().Fn(3).U64(2).Build(0);
  ASSERT_TRUE(p->Put(c.route, c.salted, std::any(int64_t{2}), 250).ok());
  EXPECT_TRUE(p->Get(a.route, a.salted).found);
  EXPECT_FALSE(p->Get(b.route, b.salted).found);
}

TEST(MemoShardTest, OversizedValueIsRejected) {
  Fixture f;
  Ref<MemoShardProclet> shard = f.Make(1, /*max_bytes=*/1000);
  MemoShardProclet* p = f.rt->UnsafeGet<MemoShardProclet>(shard.id());
  const MemoKey k = MemoKeyBuilder().Fn(4).U64(0).Build(0);
  const Status s = p->Put(k.route, k.salted, std::any(int64_t{1}), 2000);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p->entries(), 0);
}

TEST(MemoShardTest, CachedBytesChargeHostMemoryAndDropAllReleases) {
  Fixture f;
  const int64_t before = f.cluster.machine(1).memory().used();
  Ref<MemoShardProclet> shard = f.Make(1, /*max_bytes=*/1 << 20);
  MemoShardProclet* p = f.rt->UnsafeGet<MemoShardProclet>(shard.id());
  for (uint64_t i = 0; i < 8; ++i) {
    const MemoKey k = MemoKeyBuilder().Fn(5).U64(i).Build(0);
    ASSERT_TRUE(
        p->Put(k.route, k.salted, std::any(static_cast<int64_t>(i)), 1024).ok());
  }
  EXPECT_GE(f.cluster.machine(1).memory().used() - before, 8 * 1024);
  const int64_t dropped = p->DropAll();
  EXPECT_EQ(dropped, 8 * 1024);
  EXPECT_EQ(p->entries(), 0);
  EXPECT_EQ(p->cached_bytes(), 0);
}

TEST(MemoShardTest, EvictBytesFreesAtLeastTarget) {
  Fixture f;
  Ref<MemoShardProclet> shard = f.Make(1, /*max_bytes=*/1 << 20);
  MemoShardProclet* p = f.rt->UnsafeGet<MemoShardProclet>(shard.id());
  for (uint64_t i = 0; i < 10; ++i) {
    const MemoKey k = MemoKeyBuilder().Fn(6).U64(i).Build(0);
    ASSERT_TRUE(
        p->Put(k.route, k.salted, std::any(static_cast<int64_t>(i)), 500).ok());
  }
  const int64_t freed = p->EvictBytes(1200);
  EXPECT_GE(freed, 1200);
  EXPECT_EQ(p->cached_bytes(), 5000 - freed);
}

TEST(MemoShardTest, IsHarvestableAndUnprotectable) {
  Fixture f;
  Ref<MemoShardProclet> shard = f.Make(1);
  ProcletBase* p = f.rt->Find(shard.id());
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->harvestable());
  // Soft state: no checkpoint is ever captured for a cache shard.
  EXPECT_FALSE(p->CaptureState().has_value());
}

}  // namespace
}  // namespace quicksand
