#include "quicksand/memo/memoized.h"

#include <gtest/gtest.h>

#include "quicksand/cluster/fault_injector.h"
#include "quicksand/common/bytes.h"
#include "quicksand/memo/memo_harvester.h"
#include "quicksand/sched/evacuator.h"

namespace quicksand {
namespace {

// A tiny idempotent "expensive function" host: doubles its input after a
// simulated compute delay, counting invocations so tests can prove how many
// times the real work actually ran.
class DoublerProclet : public ProcletBase {
 public:
  static constexpr ProcletKind kKind = ProcletKind::kCompute;

  explicit DoublerProclet(const ProcletInit& init) : ProcletBase(init) {}

  Task<int64_t> Double(int64_t x) {
    ++calls_;
    co_await runtime().sim().Sleep(Duration::Micros(200));
    co_return 2 * x;
  }

  int64_t calls() const { return calls_; }

 private:
  int64_t calls_ = 0;
};

struct Fixture {
  Simulator sim;
  Cluster cluster{sim};
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int machines = 4) {
    for (int i = 0; i < machines; ++i) {
      MachineSpec spec;
      spec.cores = 2;
      spec.memory_bytes = 1_GiB;
      cluster.AddMachine(spec);
    }
    rt = std::make_unique<Runtime>(sim, cluster);
  }

  Ref<DoublerProclet> MakeDoubler(MachineId where) {
    PlacementRequest req;
    req.kind = ProcletKind::kCompute;
    req.heap_bytes = 4096;
    req.pinned = where;
    return *sim.BlockOn(rt->Create<DoublerProclet>(rt->CtxOn(0), req));
  }
};

MemoKey KeyFor(int64_t x, uint64_t salt = 0) {
  return MemoKeyBuilder().Fn(0xd0b1).U64(static_cast<uint64_t>(x)).Build(salt);
}

// A plain coroutine function, not a loop-local lambda: a lambda coroutine's
// captures live in the lambda OBJECT, which would be dead before the fiber
// runs (see the lifetime rule in sim/task.h).
Task<> CallMemoizedOnce(MemoCache& cache, Ctx ctx, Ref<DoublerProclet> target,
                        std::vector<int64_t>* results, WaitGroup* wg) {
  auto call = Memoized<int64_t>(cache, ctx, target, KeyFor(10),
                                [](DoublerProclet& p) -> Task<int64_t> {
                                  return p.Double(10);
                                });
  Result<int64_t> r = co_await std::move(call);
  EXPECT_TRUE(r.ok());
  if (r.ok()) {
    results->push_back(*r);
  }
  wg->Done();
}

TEST(MemoDirectoryTest, StartSpreadsShardsOffHome) {
  Fixture f;
  MemoDirectoryOptions opt;
  opt.shards = 3;
  MemoDirectory dir(*f.rt, opt);
  ASSERT_TRUE(f.sim.BlockOn(dir.Start(f.rt->CtxOn(0))).ok());
  EXPECT_EQ(dir.live_shards(), 3);
  EXPECT_EQ(dir.repairs(), 0);  // initial creation is not repair
  for (const auto& shard : dir.shards()) {
    ASSERT_TRUE(static_cast<bool>(shard));
    EXPECT_NE(f.rt->LocationOf(shard.id()), MachineId{0});
  }
}

TEST(MemoDirectoryTest, InsertThenLookupHitsFresh) {
  Fixture f;
  MemoDirectory dir(*f.rt, {});
  ASSERT_TRUE(f.sim.BlockOn(dir.Start(f.rt->CtxOn(0))).ok());
  const Ctx ctx = f.rt->CtxOn(0);
  const MemoKey key = KeyFor(21);
  ASSERT_TRUE(
      f.sim.BlockOn(dir.Insert(ctx, key, std::any(int64_t{42}), 64)).ok());
  const MemoLookup hit = f.sim.BlockOn(dir.Lookup(ctx, key, Duration::Zero()));
  ASSERT_EQ(hit.outcome, MemoOutcome::kFreshHit);
  EXPECT_EQ(std::any_cast<int64_t>(hit.value), 42);
  EXPECT_EQ(dir.hits(), 1);
  // A salt bump makes the same entry stale: fresh-only lookup misses,
  // bounded-staleness lookup still serves it.
  const MemoKey bumped = KeyFor(21, /*salt=*/1);
  const MemoLookup miss =
      f.sim.BlockOn(dir.Lookup(ctx, bumped, Duration::Zero()));
  EXPECT_EQ(miss.outcome, MemoOutcome::kMiss);
  const MemoLookup stale =
      f.sim.BlockOn(dir.Lookup(ctx, bumped, Duration::Seconds(1)));
  EXPECT_EQ(stale.outcome, MemoOutcome::kStaleHit);
  EXPECT_EQ(std::any_cast<int64_t>(stale.value), 42);
}

TEST(MemoDirectoryTest, StalenessBoundIsEnforced) {
  Fixture f;
  MemoDirectory dir(*f.rt, {});
  ASSERT_TRUE(f.sim.BlockOn(dir.Start(f.rt->CtxOn(0))).ok());
  const Ctx ctx = f.rt->CtxOn(0);
  ASSERT_TRUE(
      f.sim.BlockOn(dir.Insert(ctx, KeyFor(1), std::any(int64_t{2}), 64)).ok());
  f.sim.RunFor(Duration::Millis(20));
  const MemoKey bumped = KeyFor(1, /*salt=*/1);
  // Entry is 20ms old: a 10ms bound rejects it, a 50ms bound serves it.
  EXPECT_EQ(
      f.sim.BlockOn(dir.Lookup(ctx, bumped, Duration::Millis(10))).outcome,
      MemoOutcome::kMiss);
  EXPECT_EQ(
      f.sim.BlockOn(dir.Lookup(ctx, bumped, Duration::Millis(50))).outcome,
      MemoOutcome::kStaleHit);
}

TEST(MemoCacheTest, SingleFlightCollapsesConcurrentMisses) {
  Fixture f;
  MemoDirectory dir(*f.rt, {});
  ASSERT_TRUE(f.sim.BlockOn(dir.Start(f.rt->CtxOn(0))).ok());
  MemoCache cache(*f.rt, dir);
  Ref<DoublerProclet> target = f.MakeDoubler(1);
  const Ctx ctx = f.rt->CtxOn(0);

  std::vector<int64_t> results;
  WaitGroup wg(f.sim);
  for (int i = 0; i < 8; ++i) {
    wg.Add(1);
    f.sim.Spawn(CallMemoizedOnce(cache, ctx, target, &results, &wg),
                "memo_caller");
  }
  f.sim.BlockOn(wg.Wait());

  ASSERT_EQ(results.size(), 8u);
  for (int64_t r : results) {
    EXPECT_EQ(r, 20);
  }
  // One leader computed; seven joiners waited on the in-flight result.
  DoublerProclet* p = f.rt->UnsafeGet<DoublerProclet>(target.id());
  EXPECT_EQ(p->calls(), 1);
  EXPECT_EQ(cache.computes(), 1);
  EXPECT_EQ(cache.single_flight_waits(), 7);

  // A later call hits the directory without touching the target at all.
  auto again = Memoized<int64_t>(cache, ctx, target, KeyFor(10),
                                 [](DoublerProclet& p) -> Task<int64_t> {
                                   return p.Double(10);
                                 });
  Result<int64_t> r = f.sim.BlockOn(std::move(again));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 20);
  EXPECT_EQ(p->calls(), 1);
  EXPECT_EQ(dir.hits(), 1);
}

TEST(MemoCacheTest, FailedComputeIsNotCachedAndUnblocksJoiners) {
  Fixture f;
  MemoDirectory dir(*f.rt, {});
  ASSERT_TRUE(f.sim.BlockOn(dir.Start(f.rt->CtxOn(0))).ok());
  MemoCache cache(*f.rt, dir);
  const Ctx ctx = f.rt->CtxOn(0);

  int attempts = 0;
  auto failing = [&]() {
    return cache.GetOrCompute<int64_t>(
        ctx, KeyFor(77), Duration::Zero(),
        [&attempts]() -> Task<Result<int64_t>> {
          ++attempts;
          co_return Status::Unavailable("flaky backend");
        });
  };
  Result<int64_t> first = f.sim.BlockOn(failing());
  EXPECT_FALSE(first.ok());
  // The failure must not poison the cache: the next call recomputes.
  Result<int64_t> second = f.sim.BlockOn(failing());
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(dir.inserts(), 0);
}

TEST(MemoDirectoryTest, LostShardIsAMissThenLazilyRepaired) {
  Fixture f;
  FaultInjector faults(f.sim, f.cluster);
  f.rt->AttachFaultInjector(faults);
  MemoDirectoryOptions opt;
  opt.shards = 2;
  opt.hosts = {1, 2};
  MemoDirectory dir(*f.rt, opt);
  ASSERT_TRUE(f.sim.BlockOn(dir.Start(f.rt->CtxOn(0))).ok());
  const Ctx ctx = f.rt->CtxOn(0);
  const MemoKey key = KeyFor(5);
  ASSERT_TRUE(
      f.sim.BlockOn(dir.Insert(ctx, key, std::any(int64_t{10}), 64)).ok());
  ASSERT_EQ(f.sim.BlockOn(dir.Lookup(ctx, key, Duration::Zero())).outcome,
            MemoOutcome::kFreshHit);

  // Kill the machine hosting this key's shard: cached state is simply gone.
  const MachineId victim =
      f.rt->LocationOf(dir.shards()[key.route % 2].id());
  faults.ScheduleCrash(f.sim.Now() + Duration::Micros(10), victim);
  f.sim.RunFor(Duration::Millis(1));

  EXPECT_EQ(f.sim.BlockOn(dir.Lookup(ctx, key, Duration::Zero())).outcome,
            MemoOutcome::kMiss);
  EXPECT_GT(dir.lost_lookups(), 0);

  // Insert repairs the slot on a live host and the hit path works again.
  ASSERT_TRUE(
      f.sim.BlockOn(dir.Insert(ctx, key, std::any(int64_t{10}), 64)).ok());
  EXPECT_EQ(dir.repairs(), 1);
  EXPECT_EQ(f.sim.BlockOn(dir.Lookup(ctx, key, Duration::Zero())).outcome,
            MemoOutcome::kFreshHit);
}

TEST(MemoHarvesterTest, EvacuatorDropsCacheBeforeMigratingState) {
  Fixture f;
  FaultInjector faults(f.sim, f.cluster);
  f.rt->AttachFaultInjector(faults);
  MemoDirectoryOptions opt;
  opt.shards = 2;
  opt.hosts = {1, 1};  // both cache shards on the victim
  MemoDirectory dir(*f.rt, opt);
  ASSERT_TRUE(f.sim.BlockOn(dir.Start(f.rt->CtxOn(0))).ok());
  const Ctx ctx = f.rt->CtxOn(0);
  for (int64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(f.sim
                    .BlockOn(dir.Insert(ctx, KeyFor(i),
                                        std::any(int64_t{2 * i}), 1024))
                    .ok());
  }
  const int64_t cached = dir.cached_bytes();
  ASSERT_EQ(cached, 16 * 1024);

  MemoHarvester harvester(*f.rt);
  harvester.Register(&dir);
  EmergencyEvacuator evac(*f.rt);
  evac.AttachMemoHarvester(&harvester);
  evac.Arm(faults);

  faults.ScheduleRevocation(f.sim.Now() + Duration::Micros(10), 1,
                            Duration::Millis(5));
  f.sim.RunFor(Duration::Millis(10));

  ASSERT_EQ(evac.reports().size(), 1u);
  const EvacuationReport& report = evac.reports()[0];
  EXPECT_EQ(report.cache_dropped, 2);
  EXPECT_EQ(report.cache_bytes_dropped, cached);
  EXPECT_EQ(dir.live_shards(), 0);
  EXPECT_EQ(dir.harvested_bytes(), cached);
  EXPECT_EQ(harvester.harvests(), 1);

  // The cache refills on demand: the next insert lazily re-creates shards
  // on surviving machines.
  ASSERT_TRUE(
      f.sim.BlockOn(dir.Insert(ctx, KeyFor(0), std::any(int64_t{0}), 64)).ok());
  EXPECT_GT(dir.live_shards(), 0);
  EXPECT_NE(f.rt->LocationOf(dir.shards()[0].id()), MachineId{1});
}

}  // namespace
}  // namespace quicksand
