// The motivating experiment (§2, Fig. 1) as a runnable demo: a filler
// application structured as small compute proclets harvests CPU that is idle
// for only ~10ms at a time, migrating between machines in under a
// millisecond whenever a high-priority antagonist wakes up.
//
// Run: ./build/examples/filler_app

#include <cstdio>
#include <memory>

#include "quicksand/cluster/antagonist.h"
#include "quicksand/common/bytes.h"
#include "quicksand/proclet/compute_proclet.h"
#include "quicksand/sched/local_reactor.h"

using namespace quicksand;  // NOLINT: example brevity

namespace {

struct Counter {
  int64_t completed = 0;
};

ComputeProclet::Job FillerTask(Duration work, std::shared_ptr<Counter> counter) {
  return [work, counter](Ctx ctx) -> Task<> {
    auto* proclet = ctx.rt->UnsafeGet<ComputeProclet>(ctx.caller_proclet);
    const Duration left =
        co_await ctx.rt->cluster().machine(ctx.machine).cpu().RunCancellable(
            work, kPriorityNormal, proclet->cancel_token());
    if (left > Duration::Zero()) {
      (void)proclet->SubmitFromJob(FillerTask(left, counter));
      co_return;
    }
    ++counter->completed;
  };
}

Task<> KeepFed(Runtime& rt, Ref<ComputeProclet> proclet,
               std::shared_ptr<Counter> counter) {
  for (;;) {
    auto* p = rt.UnsafeGet<ComputeProclet>(proclet.id());
    if (p != nullptr && !p->gate_closed()) {
      while (p->queue_depth() + p->inflight() < 8) {
        (void)p->Submit(FillerTask(Duration::Micros(100), counter));
      }
    }
    co_await rt.sim().Sleep(Duration::Micros(200));
  }
}

}  // namespace

int main() {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < 2; ++i) {
    MachineSpec spec;
    spec.cores = 4;
    spec.memory_bytes = 4 * kGiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);

  // Anti-phase high-priority antagonists: each machine is fully busy for
  // 10ms, then idle for 10ms.
  PhasedAntagonistConfig phase;
  phase.busy = Duration::Millis(10);
  phase.idle = Duration::Millis(10);
  PhasedAntagonist ant0(sim, cluster.machine(0), phase);
  ant0.Start();
  phase.phase_offset = Duration::Millis(10);
  PhasedAntagonist ant1(sim, cluster.machine(1), phase);
  ant1.Start();

  // The filler: one small compute proclet, kept fed with 100us tasks.
  const Ctx ctx = rt.CtxOn(0);
  PlacementRequest req;
  req.heap_bytes = 64 * kKiB;
  auto counter = std::make_shared<Counter>();
  Ref<ComputeProclet> filler =
      *sim.BlockOn(rt.Create<ComputeProclet>(ctx, req, /*workers=*/4));
  sim.Spawn(KeepFed(rt, filler, counter), "feeder");

  // Quicksand's per-machine reactors notice starvation and migrate.
  auto reactors = StartLocalReactors(rt);

  std::printf("time[ms]  filler@machine  tasks done (cumulative)\n");
  for (int ms = 0; ms < 60; ms += 5) {
    sim.RunUntil(SimTime::Zero() + Duration::Millis(ms));
    std::printf("%7d %14u %12lld\n", ms, filler.Location(),
                static_cast<long long>(counter->completed));
  }
  std::printf("\nmigrations: %lld, latency %s\n",
              static_cast<long long>(rt.stats().migrations),
              rt.stats().migration_latency.Summary().c_str());
  std::printf("The filler finished ~%.0f%% of what a fully idle machine could\n"
              "(4 cores x 10 tasks/ms): it followed the idle CPU.\n",
              100.0 * static_cast<double>(counter->completed) / (60.0 * 40.0));
  return 0;
}
