// A sharded key-value store that keeps itself fine-grained and balanced:
// inserts grow shards past the granularity cap, the adaptive controller
// splits them (§3.3), a memory antagonist then squeezes one machine and the
// local reactor migrates shards away; finally mass deletions leave shards
// underfull and the controller merges them back.
//
// Run: ./build/examples/kv_rebalance

#include <cstdio>

#include "quicksand/adapt/controller.h"
#include "quicksand/adapt/shard_maintenance.h"
#include "quicksand/cluster/antagonist.h"
#include "quicksand/common/bytes.h"
#include "quicksand/sched/local_reactor.h"

using namespace quicksand;  // NOLINT: example brevity

namespace {

using Store = ShardedMap<std::string, std::string>;

void PrintState(Runtime& rt, Store& store, Simulator& sim, const char* label) {
  std::printf("\n[%7.1fms] %s\n", sim.Now().seconds() * 1e3, label);
  sim.BlockOn(store.router().Refresh(rt.CtxOn(0)));
  for (const ShardInfo& info : store.router().cached_shards()) {
    auto* shard = rt.UnsafeGet<Store::Shard>(info.proclet);
    if (shard == nullptr) {
      continue;
    }
    std::printf("  shard %3llu on m%u: %5lld keys, %8s\n",
                static_cast<unsigned long long>(info.proclet),
                rt.LocationOf(info.proclet), static_cast<long long>(shard->count()),
                FormatBytes(shard->data_bytes()).c_str());
  }
  for (MachineId m = 0; m < rt.cluster().size(); ++m) {
    std::printf("  machine %u memory: %s / %s\n", m,
                FormatBytes(rt.cluster().machine(m).memory().used()).c_str(),
                FormatBytes(rt.cluster().machine(m).memory().capacity()).c_str());
  }
}

}  // namespace

int main() {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < 2; ++i) {
    MachineSpec spec;
    spec.cores = 4;
    spec.memory_bytes = 256 * kMiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  const Ctx ctx = rt.CtxOn(0);
  auto reactors = StartLocalReactors(rt);

  Store store = *sim.BlockOn(Store::Create(ctx));
  constexpr int64_t kMaxShardBytes = 2 * kMiB;
  AdaptiveController controller(rt, 0, Duration::Millis(2));
  controller.Register("kv", [store](Ctx c) mutable -> Task<> {
    auto maintain =
        MaintainShardedMap(c, store, kMaxShardBytes, kMaxShardBytes / 8);
    co_await std::move(maintain);
  });
  controller.Start();

  // Phase 1: load 6 MiB of values -> the single shard splits repeatedly.
  for (int i = 0; i < 6000; ++i) {
    QS_CHECK(sim.BlockOn(store.Put(ctx, "user:" + std::to_string(i),
                                   std::string(1024, 'v')))
                 .ok());
  }
  sim.RunFor(Duration::Millis(20));  // let the controller catch up
  PrintState(rt, store, sim, "after loading 6000 x 1KiB (split phase)");

  // Phase 2: memory antagonist squeezes machine 0 past the reactor's
  // watermark -> shards migrate to m1.
  MemoryAntagonist antagonist(sim, cluster.machine(0), 248 * kMiB,
                              Duration::Millis(50), Duration::Millis(5));
  antagonist.Start();
  sim.RunFor(Duration::Millis(30));
  PrintState(rt, store, sim, "under memory pressure on machine 0");

  // Phase 3: delete 90% of keys -> merge phase shrinks the shard count.
  for (int i = 0; i < 6000; ++i) {
    if (i % 10 != 0) {
      QS_CHECK(sim.BlockOn(store.Erase(ctx, "user:" + std::to_string(i))).ok());
    }
  }
  sim.RunFor(Duration::Millis(40));
  PrintState(rt, store, sim, "after deleting 90% of keys (merge phase)");

  // The data is still all there.
  int64_t checked = 0;
  for (int i = 0; i < 6000; i += 10) {
    QS_CHECK(sim.BlockOn(store.Get(ctx, "user:" + std::to_string(i))).ok());
    ++checked;
  }
  std::printf("\nverified %lld surviving keys; migrations=%lld\n",
              static_cast<long long>(checked),
              static_cast<long long>(rt.stats().migrations));
  return 0;
}
