// Flat storage (§3.2): spreading fine-grained storage proclets across
// machines combines their disks' capacity and IOPS. This demo writes the
// same object set through 1-proclet and 4-proclet stores and compares
// completion times.
//
// Run: ./build/examples/flat_storage_demo

#include <cstdio>

#include "quicksand/common/bytes.h"
#include "quicksand/storage/flat_storage.h"

using namespace quicksand;  // NOLINT: example brevity

namespace {

Task<Duration> WriteBatch(Runtime& rt, FlatStorage& storage, int objects,
                          int64_t bytes) {
  const SimTime start = rt.sim().Now();
  std::vector<Fiber> writers;
  for (int i = 0; i < objects; ++i) {
    writers.push_back(rt.sim().Spawn(
        [](FlatStorage* s, Ctx c, uint64_t id, int64_t b) -> Task<> {
          auto write = s->Write(c, id, std::string(static_cast<size_t>(b), 'd'));
          const Status written = co_await std::move(write);
          QS_CHECK(written.ok());
        }(&storage, rt.CtxOn(0), static_cast<uint64_t>(i), bytes),
        "writer"));
  }
  co_await JoinAll(std::move(writers));
  co_return rt.sim().Now() - start;
}

Duration RunWith(int proclets) {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < 4; ++i) {
    MachineSpec spec;
    spec.memory_bytes = 4 * kGiB;
    spec.disk.capacity_bytes = 64 * kGiB;
    spec.disk.iops = 50000;
    spec.disk.bandwidth_bytes_per_sec = 1'000'000'000;  // 1 GB/s each
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  FlatStorage::Options options;
  options.proclets = proclets;
  FlatStorage storage = *sim.BlockOn(FlatStorage::Create(rt.CtxOn(0), options));
  const Duration took = sim.BlockOn(WriteBatch(rt, storage, 256, 1 * kMiB));
  return took;
}

}  // namespace

int main() {
  std::printf("writing 256 x 1 MiB objects, 4 machines with 1 GB/s disks each\n\n");
  std::printf("%10s %12s %14s\n", "proclets", "time", "throughput");
  for (int proclets : {1, 2, 4, 8}) {
    const Duration took = RunWith(proclets);
    const double gbps = 256.0 / 1024.0 / took.seconds();
    std::printf("%10d %12s %11.2f GB/s\n", proclets, took.ToString().c_str(), gbps);
  }
  std::printf("\nspreading storage proclets across machines aggregates disk\n"
              "bandwidth — the flat storage abstraction of §3.2.\n");
  return 0;
}
