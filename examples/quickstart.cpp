// Quickstart: a tour of Quicksand's public API in ~100 lines.
//
//  1. Build a simulated cluster and a Runtime.
//  2. Allocate objects in memory proclets via NewPtr / DistPtr.
//  3. Put data in a sharded map.
//  4. Run a parallel word-length histogram with a distributed thread pool
//     over a sharded vector (map-reduce style).
//
// Run: ./build/examples/quickstart

#include <cstdio>

#include "quicksand/common/bytes.h"
#include "quicksand/compute/parallel.h"
#include "quicksand/ds/sharded_map.h"
#include "quicksand/ds/sharded_vector.h"
#include "quicksand/proclet/memory_proclet.h"

using namespace quicksand;  // NOLINT: example brevity

namespace {

Task<> Demo(Runtime& rt) {
  const Ctx ctx = rt.CtxOn(0);

  // --- Distributed pointers ------------------------------------------------
  PlacementRequest req;
  req.heap_bytes = 1 * kMiB;
  auto create_mem = rt.Create<MemoryProclet>(ctx, req);
  Ref<MemoryProclet> mem = *(co_await std::move(create_mem));
  std::printf("memory proclet %llu placed on machine %u\n",
              static_cast<unsigned long long>(mem.id()), mem.Location());

  auto new_ptr = NewPtr<std::string>(ctx, mem, "hello, fungible world");
  DistPtr<std::string> ptr = *(co_await std::move(new_ptr));
  auto load = ptr.Load(ctx);
  std::printf("DistPtr::Load -> \"%s\"\n", (co_await std::move(load))->c_str());

  // The proclet (and the object in it) can move; the pointer still works.
  auto migrate = rt.Migrate(mem.id(), 1);
  (void)co_await std::move(migrate);
  auto reload = ptr.Load(ctx);
  std::printf("after migration to machine %u -> \"%s\"\n", mem.Location(),
              (co_await std::move(reload))->c_str());

  // --- Sharded map ----------------------------------------------------------
  auto create_map = ShardedMap<std::string, int64_t>::Create(ctx);
  auto scores = *(co_await std::move(create_map));
  auto put = scores.Put(ctx, "quicksand", 2023);
  (void)co_await std::move(put);
  auto get = scores.Get(ctx, "quicksand");
  std::printf("scores[\"quicksand\"] = %lld\n",
              static_cast<long long>(*(co_await std::move(get))));

  // --- Parallel compute over a sharded vector --------------------------------
  auto create_vec = ShardedVector<std::string>::Create(ctx);
  auto words = *(co_await std::move(create_vec));
  const char* corpus[] = {"resource", "proclets", "decouple", "what",
                          "clouds",   "bundle",   "into",     "instances"};
  for (const char* word : corpus) {
    auto push = words.PushBack(ctx, std::string(word));
    (void)co_await std::move(push);
  }

  DistPool::Options pool_options;
  pool_options.initial_proclets = 2;
  auto create_pool = DistPool::Create(ctx, pool_options);
  DistPool pool = *(co_await std::move(create_pool));

  auto reduce = ParallelReduce<int64_t>(
      ctx, pool, words, int64_t{0},
      [](Ctx job_ctx, uint64_t, std::string word) -> Task<int64_t> {
        // Each element is processed inside a compute proclet; model a little
        // CPU work for it.
        co_await BurnCpu(job_ctx, Duration::Micros(50));
        co_return static_cast<int64_t>(word.size());
      },
      [](int64_t a, int64_t b) { return a + b; });
  Result<int64_t> total = co_await std::move(reduce);
  std::printf("total characters across %zu words: %lld\n", std::size(corpus),
              static_cast<long long>(*total));

  auto shutdown = pool.Shutdown(ctx);
  co_await std::move(shutdown);
}

}  // namespace

int main() {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < 2; ++i) {
    MachineSpec spec;
    spec.cores = 4;
    spec.memory_bytes = 4 * kGiB;
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);

  sim.BlockOn(Demo(rt));
  std::printf("done at simulated t=%.3fms\n", sim.Now().seconds() * 1e3);
  return 0;
}
