// The §4 case study end to end, at demo scale: images load into a sharded
// vector, compute proclets preprocess them (reading through prefetching
// iterators) into a sharded queue, and delay-emulated GPUs consume — while
// the stage scaler keeps the GPUs saturated as their count changes.
//
// Run: ./build/examples/dnn_pipeline

#include <cstdio>

#include "quicksand/adapt/stage_scaler.h"
#include "quicksand/app/preprocess_stage.h"
#include "quicksand/app/trainer.h"
#include "quicksand/common/bytes.h"

using namespace quicksand;  // NOLINT: example brevity

int main() {
  Simulator sim;
  Cluster cluster(sim);
  for (int i = 0; i < 2; ++i) {
    MachineSpec spec;
    spec.cores = 8;
    spec.memory_bytes = 8 * kGiB;
    spec.cpu_quantum = Duration::Micros(50);
    cluster.AddMachine(spec);
  }
  Runtime rt(sim, cluster);
  const Ctx ctx = rt.CtxOn(0);

  // Tensors flow through a sharded queue that absorbs bursts in granular
  // memory proclets.
  auto queue = *sim.BlockOn(ShardedQueue<Tensor>::Create(ctx));

  // Preprocessing: ~1ms of CPU per (light) image.
  PreprocessStageConfig stage_cfg;
  stage_cfg.images.mean_encoded_bytes = 10000;
  stage_cfg.cost.base = Duration::Micros(200);
  stage_cfg.cost.ns_per_byte = 80.0;
  PreprocessStage stage(rt, queue, stage_cfg);
  QS_CHECK(sim.BlockOn(stage.AddProducer(ctx)).ok());

  // Emulated GPUs: 1 tensor/ms each ("we emulated GPUs by adding a delay").
  GpuTrainerConfig gpu_cfg;
  gpu_cfg.initial_gpus = 2;
  gpu_cfg.max_gpus = 8;
  gpu_cfg.batch_size = 8;
  gpu_cfg.batch_time = Duration::Millis(8);
  GpuTrainer trainer(rt, queue, gpu_cfg);
  trainer.Start();

  // The scaler matches producer throughput to GPU consumption.
  StageScalerConfig scaler_cfg;
  scaler_cfg.max_producers = 16;
  StageScaler scaler(rt, stage, queue, trainer, scaler_cfg);
  scaler.Start();

  std::printf("t[ms]  gpus  producers  images  tensors-trained\n");
  const int gpu_plan[] = {2, 2, 6, 6, 3, 3, 8, 8};
  for (int step = 0; step < 8; ++step) {
    trainer.SetGpuCount(gpu_plan[step]);
    sim.RunFor(Duration::Millis(100));
    std::printf("%5lld %5d %10d %7lld %16lld\n",
                static_cast<long long>(sim.Now().seconds() * 1e3),
                trainer.gpu_count(), stage.producer_count(),
                static_cast<long long>(stage.images_produced()),
                static_cast<long long>(trainer.tensors_consumed()));
  }
  std::printf("\nscale-ups: %lld, scale-downs: %lld — the CPU stage tracked the\n"
              "GPU stage's demand; GPUs stayed saturated without wasting CPU.\n",
              static_cast<long long>(scaler.scale_ups()),
              static_cast<long long>(scaler.scale_downs()));
  sim.BlockOn(stage.Shutdown(ctx));
  return 0;
}
