file(REMOVE_RECURSE
  "CMakeFiles/fig1_filler_migration.dir/fig1_filler_migration.cc.o"
  "CMakeFiles/fig1_filler_migration.dir/fig1_filler_migration.cc.o.d"
  "fig1_filler_migration"
  "fig1_filler_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_filler_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
