# Empty dependencies file for fig1_filler_migration.
# This may be replaced when dependencies are built.
