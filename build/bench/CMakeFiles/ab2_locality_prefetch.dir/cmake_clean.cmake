file(REMOVE_RECURSE
  "CMakeFiles/ab2_locality_prefetch.dir/ab2_locality_prefetch.cc.o"
  "CMakeFiles/ab2_locality_prefetch.dir/ab2_locality_prefetch.cc.o.d"
  "ab2_locality_prefetch"
  "ab2_locality_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab2_locality_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
