# Empty compiler generated dependencies file for ab2_locality_prefetch.
# This may be replaced when dependencies are built.
