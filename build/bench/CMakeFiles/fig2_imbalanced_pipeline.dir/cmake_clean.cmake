file(REMOVE_RECURSE
  "CMakeFiles/fig2_imbalanced_pipeline.dir/fig2_imbalanced_pipeline.cc.o"
  "CMakeFiles/fig2_imbalanced_pipeline.dir/fig2_imbalanced_pipeline.cc.o.d"
  "fig2_imbalanced_pipeline"
  "fig2_imbalanced_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_imbalanced_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
