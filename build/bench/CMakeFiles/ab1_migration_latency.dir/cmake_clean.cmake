file(REMOVE_RECURSE
  "CMakeFiles/ab1_migration_latency.dir/ab1_migration_latency.cc.o"
  "CMakeFiles/ab1_migration_latency.dir/ab1_migration_latency.cc.o.d"
  "ab1_migration_latency"
  "ab1_migration_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab1_migration_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
