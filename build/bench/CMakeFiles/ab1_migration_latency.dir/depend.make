# Empty dependencies file for ab1_migration_latency.
# This may be replaced when dependencies are built.
