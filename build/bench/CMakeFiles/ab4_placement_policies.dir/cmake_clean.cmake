file(REMOVE_RECURSE
  "CMakeFiles/ab4_placement_policies.dir/ab4_placement_policies.cc.o"
  "CMakeFiles/ab4_placement_policies.dir/ab4_placement_policies.cc.o.d"
  "ab4_placement_policies"
  "ab4_placement_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab4_placement_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
