# Empty compiler generated dependencies file for ab4_placement_policies.
# This may be replaced when dependencies are built.
