file(REMOVE_RECURSE
  "CMakeFiles/ab5_lazy_migration.dir/ab5_lazy_migration.cc.o"
  "CMakeFiles/ab5_lazy_migration.dir/ab5_lazy_migration.cc.o.d"
  "ab5_lazy_migration"
  "ab5_lazy_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab5_lazy_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
