# Empty compiler generated dependencies file for ab5_lazy_migration.
# This may be replaced when dependencies are built.
