file(REMOVE_RECURSE
  "CMakeFiles/ab3_split_merge.dir/ab3_split_merge.cc.o"
  "CMakeFiles/ab3_split_merge.dir/ab3_split_merge.cc.o.d"
  "ab3_split_merge"
  "ab3_split_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab3_split_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
