# Empty dependencies file for ab3_split_merge.
# This may be replaced when dependencies are built.
