# Empty dependencies file for fig3_gpu_adaptation.
# This may be replaced when dependencies are built.
