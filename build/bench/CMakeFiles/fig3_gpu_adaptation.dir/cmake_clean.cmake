file(REMOVE_RECURSE
  "CMakeFiles/fig3_gpu_adaptation.dir/fig3_gpu_adaptation.cc.o"
  "CMakeFiles/fig3_gpu_adaptation.dir/fig3_gpu_adaptation.cc.o.d"
  "fig3_gpu_adaptation"
  "fig3_gpu_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_gpu_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
