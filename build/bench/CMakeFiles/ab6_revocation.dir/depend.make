# Empty dependencies file for ab6_revocation.
# This may be replaced when dependencies are built.
