file(REMOVE_RECURSE
  "CMakeFiles/ab6_revocation.dir/ab6_revocation.cc.o"
  "CMakeFiles/ab6_revocation.dir/ab6_revocation.cc.o.d"
  "ab6_revocation"
  "ab6_revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab6_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
