file(REMOVE_RECURSE
  "CMakeFiles/cluster_cpu_cancel_test.dir/cluster/cpu_cancel_test.cc.o"
  "CMakeFiles/cluster_cpu_cancel_test.dir/cluster/cpu_cancel_test.cc.o.d"
  "cluster_cpu_cancel_test"
  "cluster_cpu_cancel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_cpu_cancel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
