file(REMOVE_RECURSE
  "CMakeFiles/cluster_antagonist_test.dir/cluster/antagonist_test.cc.o"
  "CMakeFiles/cluster_antagonist_test.dir/cluster/antagonist_test.cc.o.d"
  "cluster_antagonist_test"
  "cluster_antagonist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_antagonist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
