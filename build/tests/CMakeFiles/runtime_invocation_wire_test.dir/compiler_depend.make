# Empty compiler generated dependencies file for runtime_invocation_wire_test.
# This may be replaced when dependencies are built.
