file(REMOVE_RECURSE
  "CMakeFiles/runtime_invocation_wire_test.dir/runtime/invocation_wire_test.cc.o"
  "CMakeFiles/runtime_invocation_wire_test.dir/runtime/invocation_wire_test.cc.o.d"
  "runtime_invocation_wire_test"
  "runtime_invocation_wire_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_invocation_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
