# Empty dependencies file for runtime_migration_failure_test.
# This may be replaced when dependencies are built.
