file(REMOVE_RECURSE
  "CMakeFiles/runtime_migration_failure_test.dir/runtime/migration_failure_test.cc.o"
  "CMakeFiles/runtime_migration_failure_test.dir/runtime/migration_failure_test.cc.o.d"
  "runtime_migration_failure_test"
  "runtime_migration_failure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_migration_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
