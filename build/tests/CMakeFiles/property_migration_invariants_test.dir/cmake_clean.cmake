file(REMOVE_RECURSE
  "CMakeFiles/property_migration_invariants_test.dir/property/migration_invariants_test.cc.o"
  "CMakeFiles/property_migration_invariants_test.dir/property/migration_invariants_test.cc.o.d"
  "property_migration_invariants_test"
  "property_migration_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_migration_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
