# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for property_migration_invariants_test.
