# Empty dependencies file for property_migration_invariants_test.
# This may be replaced when dependencies are built.
