file(REMOVE_RECURSE
  "CMakeFiles/sim_gcc_coro_regression_test.dir/sim/gcc_coro_regression_test.cc.o"
  "CMakeFiles/sim_gcc_coro_regression_test.dir/sim/gcc_coro_regression_test.cc.o.d"
  "sim_gcc_coro_regression_test"
  "sim_gcc_coro_regression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_gcc_coro_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
