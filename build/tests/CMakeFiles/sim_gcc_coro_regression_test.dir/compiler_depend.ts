# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sim_gcc_coro_regression_test.
