# Empty compiler generated dependencies file for sim_gcc_coro_regression_test.
# This may be replaced when dependencies are built.
