file(REMOVE_RECURSE
  "CMakeFiles/app_pipeline_test.dir/app/pipeline_test.cc.o"
  "CMakeFiles/app_pipeline_test.dir/app/pipeline_test.cc.o.d"
  "app_pipeline_test"
  "app_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
