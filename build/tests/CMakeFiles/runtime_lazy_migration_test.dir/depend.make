# Empty dependencies file for runtime_lazy_migration_test.
# This may be replaced when dependencies are built.
