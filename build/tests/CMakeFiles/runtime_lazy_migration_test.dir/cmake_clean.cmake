file(REMOVE_RECURSE
  "CMakeFiles/runtime_lazy_migration_test.dir/runtime/lazy_migration_test.cc.o"
  "CMakeFiles/runtime_lazy_migration_test.dir/runtime/lazy_migration_test.cc.o.d"
  "runtime_lazy_migration_test"
  "runtime_lazy_migration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_lazy_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
