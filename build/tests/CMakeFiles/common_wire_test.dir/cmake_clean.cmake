file(REMOVE_RECURSE
  "CMakeFiles/common_wire_test.dir/common/wire_test.cc.o"
  "CMakeFiles/common_wire_test.dir/common/wire_test.cc.o.d"
  "common_wire_test"
  "common_wire_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
