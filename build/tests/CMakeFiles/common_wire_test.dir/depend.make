# Empty dependencies file for common_wire_test.
# This may be replaced when dependencies are built.
