# Empty dependencies file for sched_local_reactor_test.
# This may be replaced when dependencies are built.
