file(REMOVE_RECURSE
  "CMakeFiles/sched_local_reactor_test.dir/sched/local_reactor_test.cc.o"
  "CMakeFiles/sched_local_reactor_test.dir/sched/local_reactor_test.cc.o.d"
  "sched_local_reactor_test"
  "sched_local_reactor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_local_reactor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
