file(REMOVE_RECURSE
  "CMakeFiles/sim_simulator_edge_test.dir/sim/simulator_edge_test.cc.o"
  "CMakeFiles/sim_simulator_edge_test.dir/sim/simulator_edge_test.cc.o.d"
  "sim_simulator_edge_test"
  "sim_simulator_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_simulator_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
