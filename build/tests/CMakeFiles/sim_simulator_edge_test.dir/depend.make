# Empty dependencies file for sim_simulator_edge_test.
# This may be replaced when dependencies are built.
