# Empty dependencies file for cluster_memory_test.
# This may be replaced when dependencies are built.
