file(REMOVE_RECURSE
  "CMakeFiles/cluster_memory_test.dir/cluster/memory_test.cc.o"
  "CMakeFiles/cluster_memory_test.dir/cluster/memory_test.cc.o.d"
  "cluster_memory_test"
  "cluster_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
