# Empty dependencies file for runtime_failure_test.
# This may be replaced when dependencies are built.
