file(REMOVE_RECURSE
  "CMakeFiles/runtime_failure_test.dir/runtime/failure_test.cc.o"
  "CMakeFiles/runtime_failure_test.dir/runtime/failure_test.cc.o.d"
  "runtime_failure_test"
  "runtime_failure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
