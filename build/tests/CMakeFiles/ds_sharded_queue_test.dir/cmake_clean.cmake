file(REMOVE_RECURSE
  "CMakeFiles/ds_sharded_queue_test.dir/ds/sharded_queue_test.cc.o"
  "CMakeFiles/ds_sharded_queue_test.dir/ds/sharded_queue_test.cc.o.d"
  "ds_sharded_queue_test"
  "ds_sharded_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_sharded_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
