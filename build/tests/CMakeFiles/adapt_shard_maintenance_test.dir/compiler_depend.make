# Empty compiler generated dependencies file for adapt_shard_maintenance_test.
# This may be replaced when dependencies are built.
