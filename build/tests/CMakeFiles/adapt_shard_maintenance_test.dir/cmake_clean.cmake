file(REMOVE_RECURSE
  "CMakeFiles/adapt_shard_maintenance_test.dir/adapt/shard_maintenance_test.cc.o"
  "CMakeFiles/adapt_shard_maintenance_test.dir/adapt/shard_maintenance_test.cc.o.d"
  "adapt_shard_maintenance_test"
  "adapt_shard_maintenance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_shard_maintenance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
