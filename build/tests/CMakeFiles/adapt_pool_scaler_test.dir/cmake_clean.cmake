file(REMOVE_RECURSE
  "CMakeFiles/adapt_pool_scaler_test.dir/adapt/pool_scaler_test.cc.o"
  "CMakeFiles/adapt_pool_scaler_test.dir/adapt/pool_scaler_test.cc.o.d"
  "adapt_pool_scaler_test"
  "adapt_pool_scaler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_pool_scaler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
