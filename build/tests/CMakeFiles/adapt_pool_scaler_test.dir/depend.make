# Empty dependencies file for adapt_pool_scaler_test.
# This may be replaced when dependencies are built.
