file(REMOVE_RECURSE
  "CMakeFiles/ds_stream_test.dir/ds/stream_test.cc.o"
  "CMakeFiles/ds_stream_test.dir/ds/stream_test.cc.o.d"
  "ds_stream_test"
  "ds_stream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
