# Empty compiler generated dependencies file for proclet_compute_test.
# This may be replaced when dependencies are built.
