file(REMOVE_RECURSE
  "CMakeFiles/proclet_compute_test.dir/proclet/compute_proclet_test.cc.o"
  "CMakeFiles/proclet_compute_test.dir/proclet/compute_proclet_test.cc.o.d"
  "proclet_compute_test"
  "proclet_compute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proclet_compute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
