file(REMOVE_RECURSE
  "CMakeFiles/runtime_runtime_test.dir/runtime/runtime_test.cc.o"
  "CMakeFiles/runtime_runtime_test.dir/runtime/runtime_test.cc.o.d"
  "runtime_runtime_test"
  "runtime_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
