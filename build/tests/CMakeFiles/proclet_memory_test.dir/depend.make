# Empty dependencies file for proclet_memory_test.
# This may be replaced when dependencies are built.
