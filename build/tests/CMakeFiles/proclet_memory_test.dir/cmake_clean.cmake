file(REMOVE_RECURSE
  "CMakeFiles/proclet_memory_test.dir/proclet/memory_proclet_test.cc.o"
  "CMakeFiles/proclet_memory_test.dir/proclet/memory_proclet_test.cc.o.d"
  "proclet_memory_test"
  "proclet_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proclet_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
