file(REMOVE_RECURSE
  "CMakeFiles/ds_sharded_map_test.dir/ds/sharded_map_test.cc.o"
  "CMakeFiles/ds_sharded_map_test.dir/ds/sharded_map_test.cc.o.d"
  "ds_sharded_map_test"
  "ds_sharded_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_sharded_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
