# Empty compiler generated dependencies file for ds_sharded_map_test.
# This may be replaced when dependencies are built.
