file(REMOVE_RECURSE
  "CMakeFiles/cluster_cpu_test.dir/cluster/cpu_test.cc.o"
  "CMakeFiles/cluster_cpu_test.dir/cluster/cpu_test.cc.o.d"
  "cluster_cpu_test"
  "cluster_cpu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
