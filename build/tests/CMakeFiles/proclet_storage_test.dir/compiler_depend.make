# Empty compiler generated dependencies file for proclet_storage_test.
# This may be replaced when dependencies are built.
