file(REMOVE_RECURSE
  "CMakeFiles/proclet_storage_test.dir/proclet/storage_proclet_test.cc.o"
  "CMakeFiles/proclet_storage_test.dir/proclet/storage_proclet_test.cc.o.d"
  "proclet_storage_test"
  "proclet_storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proclet_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
