file(REMOVE_RECURSE
  "CMakeFiles/sched_global_rebalancer_test.dir/sched/global_rebalancer_test.cc.o"
  "CMakeFiles/sched_global_rebalancer_test.dir/sched/global_rebalancer_test.cc.o.d"
  "sched_global_rebalancer_test"
  "sched_global_rebalancer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_global_rebalancer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
