# Empty compiler generated dependencies file for sched_global_rebalancer_test.
# This may be replaced when dependencies are built.
