# Empty dependencies file for compute_dist_pool_test.
# This may be replaced when dependencies are built.
