file(REMOVE_RECURSE
  "CMakeFiles/compute_dist_pool_test.dir/compute/dist_pool_test.cc.o"
  "CMakeFiles/compute_dist_pool_test.dir/compute/dist_pool_test.cc.o.d"
  "compute_dist_pool_test"
  "compute_dist_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_dist_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
