# Empty dependencies file for ds_sharded_vector_test.
# This may be replaced when dependencies are built.
