file(REMOVE_RECURSE
  "CMakeFiles/sharding_shard_index_test.dir/sharding/shard_index_test.cc.o"
  "CMakeFiles/sharding_shard_index_test.dir/sharding/shard_index_test.cc.o.d"
  "sharding_shard_index_test"
  "sharding_shard_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharding_shard_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
