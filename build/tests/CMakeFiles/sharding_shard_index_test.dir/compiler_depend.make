# Empty compiler generated dependencies file for sharding_shard_index_test.
# This may be replaced when dependencies are built.
