file(REMOVE_RECURSE
  "CMakeFiles/compute_parallel_test.dir/compute/parallel_test.cc.o"
  "CMakeFiles/compute_parallel_test.dir/compute/parallel_test.cc.o.d"
  "compute_parallel_test"
  "compute_parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
