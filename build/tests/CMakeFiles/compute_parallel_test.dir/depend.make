# Empty dependencies file for compute_parallel_test.
# This may be replaced when dependencies are built.
