file(REMOVE_RECURSE
  "CMakeFiles/common_time_test.dir/common/time_test.cc.o"
  "CMakeFiles/common_time_test.dir/common/time_test.cc.o.d"
  "common_time_test"
  "common_time_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
