file(REMOVE_RECURSE
  "CMakeFiles/sched_placement_test.dir/sched/placement_test.cc.o"
  "CMakeFiles/sched_placement_test.dir/sched/placement_test.cc.o.d"
  "sched_placement_test"
  "sched_placement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
