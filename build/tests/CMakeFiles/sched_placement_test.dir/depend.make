# Empty dependencies file for sched_placement_test.
# This may be replaced when dependencies are built.
