# Empty dependencies file for property_ds_fuzz_test.
# This may be replaced when dependencies are built.
