file(REMOVE_RECURSE
  "CMakeFiles/property_ds_fuzz_test.dir/property/ds_fuzz_test.cc.o"
  "CMakeFiles/property_ds_fuzz_test.dir/property/ds_fuzz_test.cc.o.d"
  "property_ds_fuzz_test"
  "property_ds_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_ds_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
