file(REMOVE_RECURSE
  "CMakeFiles/integration_failure_recovery_test.dir/integration/failure_recovery_test.cc.o"
  "CMakeFiles/integration_failure_recovery_test.dir/integration/failure_recovery_test.cc.o.d"
  "integration_failure_recovery_test"
  "integration_failure_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_failure_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
