# Empty compiler generated dependencies file for integration_figures_test.
# This may be replaced when dependencies are built.
