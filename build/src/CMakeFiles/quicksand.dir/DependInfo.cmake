
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quicksand/adapt/stage_scaler.cc" "src/CMakeFiles/quicksand.dir/quicksand/adapt/stage_scaler.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/adapt/stage_scaler.cc.o.d"
  "/root/repo/src/quicksand/app/preprocess_stage.cc" "src/CMakeFiles/quicksand.dir/quicksand/app/preprocess_stage.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/app/preprocess_stage.cc.o.d"
  "/root/repo/src/quicksand/cluster/antagonist.cc" "src/CMakeFiles/quicksand.dir/quicksand/cluster/antagonist.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/cluster/antagonist.cc.o.d"
  "/root/repo/src/quicksand/cluster/cpu.cc" "src/CMakeFiles/quicksand.dir/quicksand/cluster/cpu.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/cluster/cpu.cc.o.d"
  "/root/repo/src/quicksand/cluster/disk.cc" "src/CMakeFiles/quicksand.dir/quicksand/cluster/disk.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/cluster/disk.cc.o.d"
  "/root/repo/src/quicksand/cluster/fault_injector.cc" "src/CMakeFiles/quicksand.dir/quicksand/cluster/fault_injector.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/cluster/fault_injector.cc.o.d"
  "/root/repo/src/quicksand/cluster/machine.cc" "src/CMakeFiles/quicksand.dir/quicksand/cluster/machine.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/cluster/machine.cc.o.d"
  "/root/repo/src/quicksand/cluster/metrics.cc" "src/CMakeFiles/quicksand.dir/quicksand/cluster/metrics.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/cluster/metrics.cc.o.d"
  "/root/repo/src/quicksand/common/bytes.cc" "src/CMakeFiles/quicksand.dir/quicksand/common/bytes.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/common/bytes.cc.o.d"
  "/root/repo/src/quicksand/common/logging.cc" "src/CMakeFiles/quicksand.dir/quicksand/common/logging.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/common/logging.cc.o.d"
  "/root/repo/src/quicksand/common/random.cc" "src/CMakeFiles/quicksand.dir/quicksand/common/random.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/common/random.cc.o.d"
  "/root/repo/src/quicksand/common/stats.cc" "src/CMakeFiles/quicksand.dir/quicksand/common/stats.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/common/stats.cc.o.d"
  "/root/repo/src/quicksand/common/status.cc" "src/CMakeFiles/quicksand.dir/quicksand/common/status.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/common/status.cc.o.d"
  "/root/repo/src/quicksand/common/time.cc" "src/CMakeFiles/quicksand.dir/quicksand/common/time.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/common/time.cc.o.d"
  "/root/repo/src/quicksand/net/fabric.cc" "src/CMakeFiles/quicksand.dir/quicksand/net/fabric.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/net/fabric.cc.o.d"
  "/root/repo/src/quicksand/net/rpc.cc" "src/CMakeFiles/quicksand.dir/quicksand/net/rpc.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/net/rpc.cc.o.d"
  "/root/repo/src/quicksand/proclet/compute_proclet.cc" "src/CMakeFiles/quicksand.dir/quicksand/proclet/compute_proclet.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/proclet/compute_proclet.cc.o.d"
  "/root/repo/src/quicksand/proclet/storage_proclet.cc" "src/CMakeFiles/quicksand.dir/quicksand/proclet/storage_proclet.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/proclet/storage_proclet.cc.o.d"
  "/root/repo/src/quicksand/runtime/proclet.cc" "src/CMakeFiles/quicksand.dir/quicksand/runtime/proclet.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/runtime/proclet.cc.o.d"
  "/root/repo/src/quicksand/runtime/runtime.cc" "src/CMakeFiles/quicksand.dir/quicksand/runtime/runtime.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/runtime/runtime.cc.o.d"
  "/root/repo/src/quicksand/sched/evacuator.cc" "src/CMakeFiles/quicksand.dir/quicksand/sched/evacuator.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/sched/evacuator.cc.o.d"
  "/root/repo/src/quicksand/sched/global_rebalancer.cc" "src/CMakeFiles/quicksand.dir/quicksand/sched/global_rebalancer.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/sched/global_rebalancer.cc.o.d"
  "/root/repo/src/quicksand/sched/local_reactor.cc" "src/CMakeFiles/quicksand.dir/quicksand/sched/local_reactor.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/sched/local_reactor.cc.o.d"
  "/root/repo/src/quicksand/sched/placement.cc" "src/CMakeFiles/quicksand.dir/quicksand/sched/placement.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/sched/placement.cc.o.d"
  "/root/repo/src/quicksand/sim/fiber.cc" "src/CMakeFiles/quicksand.dir/quicksand/sim/fiber.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/sim/fiber.cc.o.d"
  "/root/repo/src/quicksand/sim/simulator.cc" "src/CMakeFiles/quicksand.dir/quicksand/sim/simulator.cc.o" "gcc" "src/CMakeFiles/quicksand.dir/quicksand/sim/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
