file(REMOVE_RECURSE
  "libquicksand.a"
)
