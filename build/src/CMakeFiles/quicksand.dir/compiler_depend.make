# Empty compiler generated dependencies file for quicksand.
# This may be replaced when dependencies are built.
