file(REMOVE_RECURSE
  "CMakeFiles/flat_storage_demo.dir/flat_storage_demo.cpp.o"
  "CMakeFiles/flat_storage_demo.dir/flat_storage_demo.cpp.o.d"
  "flat_storage_demo"
  "flat_storage_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_storage_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
