# Empty compiler generated dependencies file for flat_storage_demo.
# This may be replaced when dependencies are built.
