file(REMOVE_RECURSE
  "CMakeFiles/kv_rebalance.dir/kv_rebalance.cpp.o"
  "CMakeFiles/kv_rebalance.dir/kv_rebalance.cpp.o.d"
  "kv_rebalance"
  "kv_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
