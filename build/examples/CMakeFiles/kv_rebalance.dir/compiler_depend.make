# Empty compiler generated dependencies file for kv_rebalance.
# This may be replaced when dependencies are built.
