# Empty compiler generated dependencies file for filler_app.
# This may be replaced when dependencies are built.
