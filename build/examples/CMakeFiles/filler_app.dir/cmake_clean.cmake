file(REMOVE_RECURSE
  "CMakeFiles/filler_app.dir/filler_app.cpp.o"
  "CMakeFiles/filler_app.dir/filler_app.cpp.o.d"
  "filler_app"
  "filler_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filler_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
