file(REMOVE_RECURSE
  "CMakeFiles/dnn_pipeline.dir/dnn_pipeline.cpp.o"
  "CMakeFiles/dnn_pipeline.dir/dnn_pipeline.cpp.o.d"
  "dnn_pipeline"
  "dnn_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
