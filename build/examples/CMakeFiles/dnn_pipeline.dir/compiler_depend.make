# Empty compiler generated dependencies file for dnn_pipeline.
# This may be replaced when dependencies are built.
