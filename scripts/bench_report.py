#!/usr/bin/env python3
"""Tabulate every results/BENCH_*.json into one perf-trajectory summary.

Each BENCH file is a flat JSON array of rows (strings and numbers only) as
written by bench/bench_json.h or the ab9/ab10/ab11 emitters. This script
groups rows by file and scenario and prints aligned tables, so a single run
of the benches plus this script gives the whole perf picture of a checkout:

    scripts/bench_report.py [results_dir]

Exits nonzero if a BENCH file is unreadable or malformed, so CI can gate on
record integrity without judging the numbers themselves.
"""

import json
import pathlib
import sys


def fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def print_table(rows):
    """Prints dict rows with a union-of-keys header, first-seen key order."""
    columns = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    table = [columns] + [[fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(r[i]) for r in table) for i in range(len(columns))]
    for i, row in enumerate(table):
        print("  " + "  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            print("  " + "  ".join("-" * w for w in widths))


def main():
    results = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    files = sorted(results.glob("BENCH_*.json"))
    if not files:
        print(f"no BENCH_*.json under {results}/", file=sys.stderr)
        return 1

    failures = 0
    total_rows = 0
    for path in files:
        try:
            rows = json.loads(path.read_text())
            if not isinstance(rows, list) or not all(
                isinstance(r, dict) for r in rows
            ):
                raise ValueError("expected a JSON array of flat objects")
        except (ValueError, OSError) as err:
            print(f"{path}: MALFORMED ({err})", file=sys.stderr)
            failures += 1
            continue

        print(f"== {path.name} ({len(rows)} rows) ==")
        total_rows += len(rows)
        # Keep scenario groups separate: their columns differ.
        by_scenario = {}
        for row in rows:
            by_scenario.setdefault(row.get("scenario", ""), []).append(row)
        for scenario, group in by_scenario.items():
            if len(by_scenario) > 1:
                print(f" [{scenario}]")
            print_table(group)
        print()

    print(f"{len(files)} record files, {total_rows} rows, {failures} malformed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
