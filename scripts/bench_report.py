#!/usr/bin/env python3
"""Tabulate every results/BENCH_*.json into one perf-trajectory summary.

Each BENCH file is a flat JSON array of rows (strings and numbers only) as
written by bench/bench_json.h or the ab9/ab10/ab11 emitters. This script
groups rows by file and scenario and prints aligned tables, so a single run
of the benches plus this script gives the whole perf picture of a checkout:

    scripts/bench_report.py [results_dir] [--baseline DIR]

Every bench that records a JSON file is registered in EXPECTED_RECORDS; a
registered file that is absent from the results directory gets a WARNING, so
a bench that silently stopped writing its record is noticed the next time
anyone looks at the report.

With --baseline, rows are matched against the same file/scenario in a second
results directory (e.g. a checkout of main) and every throughput-like column
(*_qps, *_per_sec, goodput) grows a delta column. A drop of more than 10%
is flagged as a REGRESSION and the script exits nonzero, so CI can gate on
"did this change slow a recorded scenario down".

Exits nonzero if a BENCH file is unreadable or malformed, so CI can gate on
record integrity without judging the numbers themselves.
"""

import argparse
import json
import pathlib
import sys

# Every bench binary that writes a results/BENCH_*.json record. A new bench
# registers here so the report warns when its record goes missing.
EXPECTED_RECORDS = [
    "BENCH_ab1.json",   # ab1_migration_latency
    "BENCH_ab2.json",   # ab2_locality_prefetch
    "BENCH_ab3.json",   # ab3_split_merge
    "BENCH_ab4.json",   # ab4_placement_policies
    "BENCH_ab5.json",   # ab5_lazy_migration
    "BENCH_ab6.json",   # ab6_revocation
    "BENCH_ab7.json",   # ab7_recovery
    "BENCH_ab8.json",   # ab8_partition
    "BENCH_ab9.json",   # ab9_overload
    "BENCH_ab10.json",  # ab10_autoscale
    "BENCH_ab11.json",  # ab11_chaos
    "BENCH_ab12.json",  # ab12_memo
    "BENCH_scale.json", # scale_sim
]

REGRESSION_THRESHOLD = 0.10  # flag throughput drops larger than this


def is_throughput_key(key):
    return key.endswith("_qps") or key.endswith("_per_sec") or "goodput" in key


def fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def print_table(rows):
    """Prints dict rows with a union-of-keys header, first-seen key order."""
    columns = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    table = [columns] + [[fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(r[i]) for r in table) for i in range(len(columns))]
    for i, row in enumerate(table):
        print("  " + "  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            print("  " + "  ".join("-" * w for w in widths))


def load_rows(path):
    rows = json.loads(path.read_text())
    if not isinstance(rows, list) or not all(isinstance(r, dict) for r in rows):
        raise ValueError("expected a JSON array of flat objects")
    return rows


def row_identity(row):
    """String-valued fields identify a row; numeric fields are the payload."""
    return tuple(sorted((k, v) for k, v in row.items() if isinstance(v, str)))


def index_rows(rows):
    """Maps (identity, occurrence#) -> row, so repeated identities stay
    distinguishable by their deterministic emit order."""
    seen = {}
    indexed = {}
    for row in rows:
        ident = row_identity(row)
        n = seen.get(ident, 0)
        seen[ident] = n + 1
        indexed[(ident, n)] = row
    return indexed


def add_deltas(rows, baseline_rows):
    """Appends a delta column per throughput key; returns regression count."""
    base = index_rows(baseline_rows)
    seen = {}
    regressions = 0
    for row in rows:
        ident = row_identity(row)
        n = seen.get(ident, 0)
        seen[ident] = n + 1
        ref = base.get((ident, n))
        if ref is None:
            continue
        for key in list(row):
            if not is_throughput_key(key):
                continue
            new, old = row.get(key), ref.get(key)
            if not isinstance(new, (int, float)) or not isinstance(old, (int, float)):
                continue
            if old == 0:
                continue
            delta = (new - old) / old
            cell = f"{delta:+.1%}"
            if delta < -REGRESSION_THRESHOLD:
                cell += " REGRESSION"
                regressions += 1
            row[f"{key} Δ"] = cell
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results_dir", nargs="?", default="results")
    parser.add_argument(
        "--baseline",
        metavar="DIR",
        help="results directory to diff against; throughput drops >10%% are "
        "flagged and fail the report",
    )
    args = parser.parse_args()

    results = pathlib.Path(args.results_dir)
    baseline = pathlib.Path(args.baseline) if args.baseline else None
    files = sorted(results.glob("BENCH_*.json"))
    if not files:
        print(f"no BENCH_*.json under {results}/", file=sys.stderr)
        return 1

    present = {p.name for p in files}
    missing = [name for name in EXPECTED_RECORDS if name not in present]
    for name in missing:
        print(
            f"WARNING: registered bench record {name} is absent from "
            f"{results}/ — did its bench stop writing it?",
            file=sys.stderr,
        )

    failures = 0
    regressions = 0
    total_rows = 0
    for path in files:
        try:
            rows = load_rows(path)
        except (ValueError, OSError) as err:
            print(f"{path}: MALFORMED ({err})", file=sys.stderr)
            failures += 1
            continue

        if baseline is not None:
            base_path = baseline / path.name
            if base_path.exists():
                try:
                    regressions += add_deltas(rows, load_rows(base_path))
                except (ValueError, OSError) as err:
                    print(f"{base_path}: MALFORMED baseline ({err})",
                          file=sys.stderr)
                    failures += 1
            else:
                print(f"note: no baseline for {path.name}", file=sys.stderr)

        print(f"== {path.name} ({len(rows)} rows) ==")
        total_rows += len(rows)
        # Keep scenario groups separate: their columns differ.
        by_scenario = {}
        for row in rows:
            by_scenario.setdefault(row.get("scenario", ""), []).append(row)
        for scenario, group in by_scenario.items():
            if len(by_scenario) > 1:
                print(f" [{scenario}]")
            print_table(group)
        print()

    print(
        f"{len(files)} record files, {total_rows} rows, {failures} malformed, "
        f"{len(missing)} registered records missing, {regressions} throughput "
        f"regressions"
    )
    return 1 if failures or regressions else 0


if __name__ == "__main__":
    sys.exit(main())
