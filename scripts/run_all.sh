#!/usr/bin/env bash
# Builds everything, runs the test suite, then regenerates every figure,
# table, and ablation — the outputs EXPERIMENTS.md records.
#
# Usage: scripts/run_all.sh [--quick]
#   --quick  scale Fig. 2 down to 6000 images (~10x faster, same shape)

set -euo pipefail
cd "$(dirname "$0")/.."

FIG2_IMAGES=60000
if [[ "${1:-}" == "--quick" ]]; then
  FIG2_IMAGES=6000
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --timeout 300

mkdir -p results
for b in fig1_filler_migration fig3_gpu_adaptation \
         ab1_migration_latency ab2_locality_prefetch ab3_split_merge \
         ab4_placement_policies ab5_lazy_migration; do
  echo "== $b =="
  ./build/bench/$b | tee "results/$b.txt"
done
echo "== fig2_imbalanced_pipeline (QS_FIG2_IMAGES=$FIG2_IMAGES) =="
QS_FIG2_IMAGES=$FIG2_IMAGES ./build/bench/fig2_imbalanced_pipeline |
  tee results/fig2_imbalanced_pipeline.txt
echo "== micro_sim =="
./build/bench/micro_sim --benchmark_min_time=0.1s | tee results/micro_sim.txt

echo "all outputs in results/"
