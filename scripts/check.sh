#!/usr/bin/env bash
# Tier-1 gate: build + ctest, plain and sanitized (ASan+UBSan).
#
# Usage: scripts/check.sh [--plain-only|--sanitize-only]

set -euo pipefail

cd "$(dirname "$0")/.."

mode="all"
case "${1:-}" in
  --plain-only) mode="plain" ;;
  --sanitize-only) mode="sanitize" ;;
  "") ;;
  *) echo "usage: $0 [--plain-only|--sanitize-only]" >&2; exit 2 ;;
esac

jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@" >/dev/null
  cmake --build "$build_dir" -j"$jobs"
  ctest --test-dir "$build_dir" --output-on-failure
}

if [[ "$mode" == "all" || "$mode" == "plain" ]]; then
  echo "== plain build + ctest =="
  run_suite build
fi

if [[ "$mode" == "all" || "$mode" == "sanitize" ]]; then
  echo "== ASan+UBSan build + ctest =="
  run_suite build-asan -DQUICKSAND_SANITIZE=ON
fi

echo "== all checks passed =="
