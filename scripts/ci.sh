#!/usr/bin/env bash
# CI entry point: tier-1 tests (plain + ASan/UBSan via scripts/check.sh) and
# the smoke gates (durability, trace determinism, partition failover,
# overload control, autoscale, chaos, memoization), each of which fails on
# nondeterminism between two same-seed runs.
#
# Usage: scripts/ci.sh            # full gate
#        scripts/ci.sh --soak N   # chaos soak only: N seeded schedules
#                                 # through the chaos engine (default 50)

set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"

if [[ "${1:-}" == "--soak" ]]; then
  seeds="${2:-50}"
  echo "== chaos soak: $seeds seeded schedules vs the invariant oracles =="
  cmake -B build -S . >/dev/null
  cmake --build build -j"$jobs" --target ab11_chaos
  ./build/bench/ab11_chaos --seeds "$seeds"
  echo "chaos soak: all $seeds schedules passed the oracles"
  exit 0
fi

echo "== tier-1: plain build + ctest -L tier1 =="
cmake -B build -S . >/dev/null
cmake --build build -j"$jobs"
ctest --test-dir build -L tier1 --output-on-failure

echo "== tier-1: ASan/UBSan build + ctest =="
scripts/check.sh --sanitize-only

echo "== durability smoke: two same-seed recovery runs must be bit-identical =="
./build/bench/ab7_recovery --smoke

echo "== trace smoke: same-seed migration runs must agree on the trace digest =="
./build/bench/ab1_migration_latency --smoke

echo "== partition smoke: gray-failure failover must be deterministic and exactly-once =="
./build/bench/ab8_partition --smoke

echo "== overload smoke: collapse without controls, plateau with, deterministically =="
./build/bench/ab9_overload --smoke

echo "== autoscale smoke: hot shard splits, settle p99 inside SLO, deterministically =="
./build/bench/ab10_autoscale --smoke

echo "== chaos smoke: fixed schedule corpus survives; the reintroduced reshape bug is caught and shrunk =="
./build/bench/ab11_chaos --smoke

echo "== memo smoke: hit-rate, cache-first harvest and stale-serve gates, deterministically =="
./build/bench/ab12_memo --smoke

echo "== scale smoke: event-core digests stable across runs, throughput above floor =="
./build/bench/scale_sim --smoke

echo "== chaos smoke (sanitized): same gate under ASan/UBSan =="
./build-asan/bench/ab11_chaos --smoke

echo "== memo smoke (sanitized): same gate under ASan/UBSan =="
./build-asan/bench/ab12_memo --smoke

echo "CI: all gates passed"
